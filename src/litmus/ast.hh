/**
 * @file
 * Abstract syntax of the litmus DSL: a herd-inspired text format for the
 * programs the paper reasons about.
 *
 * A test is a name, an init section declaring every symbolic location
 * (with an optional `sync` qualifier marking synchronization locations),
 * a statement table with one column per processor, and a final
 * `exists`/`forbidden` clause over registers and final memory values.
 * See litmus_parser.hh for the concrete grammar.
 */

#ifndef WO_LITMUS_AST_HH
#define WO_LITMUS_AST_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace wo {
namespace litmus_dsl {

/** One init-section entry: `loc = value [sync];`. */
struct InitEntry
{
    std::string loc;
    Word value = 0;
    bool sync = false; ///< synchronization location (mapped after data)
    int line = 0;      ///< 1-based source line
};

/**
 * One statement cell of the program table: an optional label plus an
 * optional instruction. Label-only cells bind the label to the column's
 * next instruction (so several labels can share one target).
 */
struct Stmt
{
    std::string label;    ///< "" when the cell carries no label
    std::string mnemonic; ///< lower-cased; "" for a label-only cell
    int reg = -1;         ///< dst for load/test/tas/movi/addi, src for beq/bne
    int reg2 = -1;        ///< addi source, or store/unset register operand
    std::string loc;      ///< symbolic location operand ("" = none)
    Word imm = 0;         ///< immediate operand
    bool hasImm = false;  ///< immediate operand present
    std::string target;   ///< branch target label
    int count = 1;        ///< nop repeat count
    int line = 0;         ///< 1-based source line
};

/** Comparison operator of a clause term. */
enum class CmpOp { Eq, Ne };

/** A node of the final-condition expression tree. */
struct Cond
{
    enum class Kind {
        And,     ///< all kids hold
        Or,      ///< any kid holds
        Not,     ///< single kid does not hold
        RegTerm, ///< P<proc>:r<reg> <op> value
        MemTerm, ///< <loc> <op> value (final memory)
    };

    Kind kind = Kind::RegTerm;
    std::vector<Cond> kids; ///< And/Or: >= 2 children; Not: exactly 1

    int proc = -1;   ///< RegTerm
    int reg = -1;    ///< RegTerm
    std::string loc; ///< MemTerm
    CmpOp op = CmpOp::Eq;
    Word value = 0;
    int line = 0;
};

/** Flavour of the final clause. */
enum class ClauseKind {
    Exists,    ///< the condition must be observable (on the weakest policy)
    Forbidden, ///< the condition must never hold where SC is promised
};

/** The final clause: `exists (c)` or `forbidden [always] (c)`. */
struct Clause
{
    ClauseKind kind = ClauseKind::Forbidden;

    /** `forbidden always`: enforced under every policy, not only the
     * SC-promising ones (coherence / fence tests). */
    bool always = false;

    Cond cond;
    int line = 0;
};

/** A complete parsed litmus test. */
struct LitmusTest
{
    std::string name; ///< from the `name` line, else the file stem
    std::string file; ///< source path (diagnostics)
    std::vector<InitEntry> inits;
    std::vector<std::vector<Stmt>> procs; ///< one statement list per column
    Clause clause;
};

} // namespace litmus_dsl
} // namespace wo

#endif // WO_LITMUS_AST_HH
