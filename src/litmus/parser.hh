/**
 * @file
 * Lexer/parser for the litmus DSL (line oriented; '#' starts a comment).
 *
 * Grammar:
 *
 *   test      := [ name ] init table clause
 *   name      := "name" ident
 *   init      := "init" "{" { ident "=" num [ "sync" ] ";" } "}"
 *   table     := header { row }
 *   header    := "P0" { "|" "P" num } ";"
 *   row       := cell { "|" cell } ";"      ; one cell per processor
 *   cell      := [ ident ":" ] [ insn ]     ; both parts optional
 *   insn      := "load"  reg "," ident
 *              | "store" ident "," ( reg | num )
 *              | "test"  reg "," ident           ; read-only sync
 *              | "unset" ident [ "," ( reg | num ) ] ; write-only sync
 *              | "tas"   reg "," ident [ "," num ]   ; read-write sync
 *              | "movi"  reg "," num
 *              | "addi"  reg "," reg "," num
 *              | "beq"   reg "," num "," ident
 *              | "bne"   reg "," num "," ident
 *              | "fence" | "nop" [ num ] | "halt"
 *   clause    := "exists" "(" cond ")"
 *              | "forbidden" [ "always" ] "(" cond ")"
 *   cond      := conj { "||" conj }
 *   conj      := atom { "&&" atom }
 *   atom      := "(" cond ")" | "!" atom | term
 *   term      := ( "P" num ":" reg | ident ) ( "==" | "!=" ) num
 *   reg       := "r" num
 *
 * Locations are symbolic; every location used by a statement or a memory
 * term must be declared in the init section. Parse errors throw
 * LitmusError carrying file and 1-based line.
 */

#ifndef WO_LITMUS_PARSER_HH
#define WO_LITMUS_PARSER_HH

#include <stdexcept>
#include <string>

#include "litmus/ast.hh"

namespace wo {
namespace litmus_dsl {

/** Parse/compile failure; what() is "file:line: message". */
class LitmusError : public std::runtime_error
{
  public:
    LitmusError(std::string file, int line, const std::string &msg)
        : std::runtime_error(file + ":" + std::to_string(line) + ": " +
                             msg),
          file_(std::move(file)), line_(line)
    {}

    const std::string &file() const { return file_; }

    /** 1-based source line of the error (0 when not line-specific). */
    int line() const { return line_; }

  private:
    std::string file_;
    int line_;
};

/** Parse litmus source text. @p file labels diagnostics. */
LitmusTest parseLitmus(const std::string &source, const std::string &file);

/** Parse a .litmus file from disk. */
LitmusTest parseLitmusFile(const std::string &path);

/** Render a condition back to source syntax. */
std::string toString(const Cond &c);

/** Render a clause back to source syntax. */
std::string toString(const Clause &c);

} // namespace litmus_dsl
} // namespace wo

#endif // WO_LITMUS_PARSER_HH
