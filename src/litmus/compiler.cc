#include "litmus/compiler.hh"

#include <set>

#include "cpu/program_builder.hh"

namespace wo {
namespace litmus_dsl {

namespace {

/** Max register index the DSL accepts (matches workload scale). */
constexpr int kMaxReg = 63;

void
checkReg(const std::string &file, int line, int r)
{
    if (r < 0 || r > kMaxReg) {
        throw LitmusError(file, line,
                          "register r" + std::to_string(r) +
                              " out of range (0..." +
                              std::to_string(kMaxReg) + ")");
    }
}

struct LocInfo
{
    Addr addr;
    bool sync;
};

void
validateCond(const Cond &c, const LitmusTest &t,
             const std::map<std::string, LocInfo> &locs, int num_procs)
{
    switch (c.kind) {
      case Cond::Kind::And:
      case Cond::Kind::Or:
      case Cond::Kind::Not:
        for (const Cond &k : c.kids)
            validateCond(k, t, locs, num_procs);
        break;
      case Cond::Kind::RegTerm:
        if (c.proc < 0 || c.proc >= num_procs) {
            throw LitmusError(t.file, c.line ? c.line : t.clause.line,
                              "clause names P" + std::to_string(c.proc) +
                                  " but the test has " +
                                  std::to_string(num_procs) +
                                  " processors");
        }
        checkReg(t.file, c.line ? c.line : t.clause.line, c.reg);
        break;
      case Cond::Kind::MemTerm:
        if (!locs.count(c.loc)) {
            throw LitmusError(t.file, c.line ? c.line : t.clause.line,
                              "clause names undeclared location '" +
                                  c.loc + "'");
        }
        break;
    }
}

} // namespace

CompiledLitmus
compileLitmus(const LitmusTest &t)
{
    CompiledLitmus out;
    out.name = t.name;
    out.file = t.file;
    out.clause = t.clause;
    out.program.setName(t.name);

    // Intern locations: data first, then sync (the repo-wide litmus
    // address-map convention).
    std::map<std::string, LocInfo> locs;
    for (const InitEntry &e : t.inits) {
        if (!e.sync) {
            LocInfo info{static_cast<Addr>(out.dataLocs.size()), false};
            locs.emplace(e.loc, info);
            out.dataLocs.push_back(e.loc);
        }
    }
    for (const InitEntry &e : t.inits) {
        if (e.sync) {
            LocInfo info{static_cast<Addr>(out.dataLocs.size() +
                                           out.syncLocs.size()),
                         true};
            locs.emplace(e.loc, info);
            out.syncLocs.push_back(e.loc);
        }
    }
    for (const auto &[name, info] : locs)
        out.addrOf[name] = info.addr;

    auto resolve = [&](const Stmt &s, bool need_sync) -> Addr {
        auto it = locs.find(s.loc);
        if (it == locs.end()) {
            throw LitmusError(t.file, s.line,
                              "undeclared location '" + s.loc +
                                  "' (declare it in the init section)");
        }
        if (need_sync && !it->second.sync) {
            throw LitmusError(t.file, s.line,
                              "'" + s.mnemonic +
                                  "' is a synchronization operation but "
                                  "'" +
                                  s.loc +
                                  "' is not declared sync");
        }
        return it->second.addr;
    };

    if (t.procs.empty())
        throw LitmusError(t.file, 1, "test declares no processors");

    for (std::size_t p = 0; p < t.procs.size(); ++p) {
        ProgramBuilder b;
        bool halted = false;
        std::set<std::string> labels;
        for (const Stmt &s : t.procs[p]) {
            if (!s.label.empty()) {
                if (!labels.insert(s.label).second) {
                    throw LitmusError(t.file, s.line,
                                      "duplicate label '" + s.label +
                                          "' in P" + std::to_string(p));
                }
                b.label(s.label);
            }
            if (s.mnemonic.empty())
                continue;
            if (s.reg >= 0)
                checkReg(t.file, s.line, s.reg);
            if (s.reg2 >= 0)
                checkReg(t.file, s.line, s.reg2);
            halted = false;
            if (s.mnemonic == "load") {
                b.load(s.reg, resolve(s, false));
            } else if (s.mnemonic == "store") {
                if (s.reg2 >= 0)
                    b.storeReg(resolve(s, false), s.reg2);
                else
                    b.store(resolve(s, false), s.imm);
            } else if (s.mnemonic == "test") {
                b.test(s.reg, resolve(s, true));
            } else if (s.mnemonic == "unset") {
                if (s.reg2 >= 0)
                    b.unsetReg(resolve(s, true), s.reg2);
                else
                    b.unset(resolve(s, true), s.imm);
            } else if (s.mnemonic == "tas") {
                b.tas(s.reg, resolve(s, true), s.imm);
            } else if (s.mnemonic == "movi") {
                b.movi(s.reg, s.imm);
            } else if (s.mnemonic == "addi") {
                b.addi(s.reg, s.reg2, s.imm);
            } else if (s.mnemonic == "beq") {
                b.beq(s.reg, s.imm, s.target);
            } else if (s.mnemonic == "bne") {
                b.bne(s.reg, s.imm, s.target);
            } else if (s.mnemonic == "fence") {
                b.fence();
            } else if (s.mnemonic == "nop") {
                b.nop(s.count);
            } else if (s.mnemonic == "halt") {
                b.halt();
                halted = true;
            } else {
                throw LitmusError(t.file, s.line,
                                  "unknown mnemonic '" + s.mnemonic +
                                      "'");
            }
        }
        if (!halted)
            b.halt(); // implicit trailing halt, like falling off main()
        try {
            out.program.addProgram(b.build());
        } catch (const std::invalid_argument &e) {
            int line =
                t.procs[p].empty() ? 1 : t.procs[p].front().line;
            throw LitmusError(t.file, line,
                              "P" + std::to_string(p) + ": " + e.what());
        }
    }

    for (const InitEntry &e : t.inits) {
        if (e.value != 0)
            out.program.setInitial(locs.at(e.loc).addr, e.value);
    }

    validateCond(t.clause.cond, t, locs,
                 static_cast<int>(t.procs.size()));
    return out;
}

CompiledLitmus
compileLitmusFile(const std::string &path)
{
    return compileLitmus(parseLitmusFile(path));
}

} // namespace litmus_dsl
} // namespace wo
