/**
 * @file
 * Compiler from the parsed litmus AST to an executable MultiProgram.
 *
 * Symbolic locations are interned following the repo-wide litmus
 * convention: data locations first (addresses 0..D-1, in declaration
 * order), then synchronization locations (D..D+S-1). Synchronization
 * mnemonics (test/unset/tas) may only target `sync`-declared locations,
 * so DRF0's "hardware-recognizable synchronization" property is visible
 * in the source text; plain load/store may target anything (the barrier
 * builder reads a sync count with an ordinary load).
 */

#ifndef WO_LITMUS_COMPILER_HH
#define WO_LITMUS_COMPILER_HH

#include <map>
#include <string>
#include <vector>

#include "cpu/program.hh"
#include "litmus/ast.hh"
#include "litmus/parser.hh"

namespace wo {
namespace litmus_dsl {

/** A litmus test lowered to an executable workload. */
struct CompiledLitmus
{
    std::string name;
    std::string file;
    MultiProgram program;
    Clause clause;

    /** Symbolic location → interned address (data first, then sync). */
    std::map<std::string, Addr> addrOf;

    /** Location names in address order (dataLocs then syncLocs). */
    std::vector<std::string> dataLocs;
    std::vector<std::string> syncLocs;
};

/** Lower @p t; throws LitmusError (with file:line) on semantic errors:
 * undeclared locations, sync mnemonics on data locations, unknown branch
 * labels, clause terms out of range. */
CompiledLitmus compileLitmus(const LitmusTest &t);

/** parseLitmusFile + compileLitmus. */
CompiledLitmus compileLitmusFile(const std::string &path);

} // namespace litmus_dsl
} // namespace wo

#endif // WO_LITMUS_COMPILER_HH
