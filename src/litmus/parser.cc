#include "litmus/parser.hh"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

namespace wo {
namespace litmus_dsl {

namespace {

/** One lexical token with its source line. */
struct Token
{
    std::string text;
    int line = 0;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Tokenize the whole source: identifiers/numbers, the two-character
 * operators == != && ||, and single-character punctuation. '#' starts a
 * comment to end of line.
 */
std::vector<Token>
tokenizeAll(const std::string &source, const std::string &file)
{
    std::vector<Token> toks;
    int line = 1;
    std::size_t i = 0;
    while (i < source.size()) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '#') {
            while (i < source.size() && source[i] != '\n')
                ++i;
            continue;
        }
        if (i + 1 < source.size()) {
            std::string two = source.substr(i, 2);
            if (two == "==" || two == "!=" || two == "&&" || two == "||") {
                toks.push_back({two, line});
                i += 2;
                continue;
            }
        }
        if (c == ',' || c == ':' || c == ';' || c == '(' || c == ')' ||
            c == '{' || c == '}' || c == '=' || c == '|' || c == '!') {
            toks.push_back({std::string(1, c), line});
            ++i;
            continue;
        }
        if (isIdentChar(c) || c == '-') {
            // '-' may both lead a negative number and appear inside a
            // hyphenated name ("racy-mp"); there is no infix arithmetic,
            // so greedy scanning is unambiguous.
            std::size_t j = i + 1;
            while (j < source.size() &&
                   (isIdentChar(source[j]) || source[j] == '-'))
                ++j;
            toks.push_back({source.substr(i, j - i), line});
            i = j;
            continue;
        }
        throw LitmusError(file, line,
                          std::string("unexpected character '") + c + "'");
    }
    return toks;
}

bool
isNumber(const std::string &s)
{
    std::size_t start = (!s.empty() && s[0] == '-') ? 1 : 0;
    if (start >= s.size())
        return false;
    for (std::size_t i = start; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
    }
    return true;
}

bool
isRegToken(const std::string &s)
{
    if (s.size() < 2 || (s[0] != 'r' && s[0] != 'R'))
        return false;
    for (std::size_t i = 1; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
    }
    return true;
}

/** "P<n>" (either case) → n, or -1 when the token is something else. */
int
procNumber(const std::string &s)
{
    if (s.size() < 2 || (s[0] != 'P' && s[0] != 'p'))
        return -1;
    for (std::size_t i = 1; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return -1;
    }
    return std::stoi(s.substr(1));
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Cursor over the token stream with file-carrying diagnostics. */
class Cur
{
  public:
    Cur(std::vector<Token> toks, std::string file)
        : toks_(std::move(toks)), file_(std::move(file))
    {}

    bool done() const { return pos_ >= toks_.size(); }

    /** Line of the current (or last) token. */
    int
    line() const
    {
        if (toks_.empty())
            return 1;
        return done() ? toks_.back().line : toks_[pos_].line;
    }

    const std::string &
    peek() const
    {
        static const std::string kEnd;
        return done() ? kEnd : toks_[pos_].text;
    }

    const Token &
    next(const char *what)
    {
        if (done())
            fail(std::string("expected ") + what + ", got end of file");
        return toks_[pos_++];
    }

    bool
    accept(const std::string &tok)
    {
        if (!done() && toks_[pos_].text == tok) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(const std::string &tok, const char *context)
    {
        if (!accept(tok)) {
            fail("expected '" + tok + "' " + context + ", got " +
                 describeHere());
        }
    }

    Word
    number(const char *what)
    {
        const Token &t = next(what);
        if (!isNumber(t.text))
            fail("expected " + std::string(what) + ", got '" + t.text +
                 "'");
        bool neg = t.text[0] == '-';
        std::uint64_t v = 0;
        for (std::size_t i = neg ? 1 : 0; i < t.text.size(); ++i)
            v = v * 10 + static_cast<std::uint64_t>(t.text[i] - '0');
        return neg ? static_cast<Word>(~v + 1) : static_cast<Word>(v);
    }

    int
    reg(const char *what)
    {
        const Token &t = next(what);
        if (!isRegToken(t.text))
            fail("expected register (r<N>) for " + std::string(what) +
                 ", got '" + t.text + "'");
        return std::stoi(t.text.substr(1));
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw LitmusError(file_, line(), msg);
    }

    std::string
    describeHere() const
    {
        return done() ? "end of file" : "'" + toks_[pos_].text + "'";
    }

    const std::string &file() const { return file_; }

  private:
    std::vector<Token> toks_;
    std::string file_;
    std::size_t pos_ = 0;
};

/** Parse one instruction (mnemonic already consumed into @p s). */
void
parseInsn(Cur &c, Stmt &s)
{
    const std::string &op = s.mnemonic;
    if (op == "load" || op == "test") {
        s.reg = c.reg("destination");
        c.expect(",", "after register");
        s.loc = c.next("location").text;
    } else if (op == "store" || op == "unset") {
        s.loc = c.next("location").text;
        bool has_operand = c.accept(",");
        if (!has_operand && op == "store")
            c.fail("store needs a value operand");
        if (has_operand) {
            const Token &v = c.next("value");
            if (isRegToken(v.text)) {
                s.reg2 = std::stoi(v.text.substr(1));
            } else if (isNumber(v.text)) {
                Cur tmp({{v.text, v.line}}, c.file());
                s.imm = tmp.number("value");
                s.hasImm = true;
            } else {
                c.fail("expected register or number, got '" + v.text +
                       "'");
            }
        } else {
            s.imm = 0; // unset's default release value
            s.hasImm = true;
        }
    } else if (op == "tas") {
        s.reg = c.reg("destination");
        c.expect(",", "after register");
        s.loc = c.next("location").text;
        s.imm = 1; // TestAndSet's default write value
        s.hasImm = true;
        if (c.accept(","))
            s.imm = c.number("write value");
    } else if (op == "movi") {
        s.reg = c.reg("destination");
        c.expect(",", "after register");
        s.imm = c.number("immediate");
        s.hasImm = true;
    } else if (op == "addi") {
        s.reg = c.reg("destination");
        c.expect(",", "after register");
        s.reg2 = c.reg("source");
        c.expect(",", "after register");
        s.imm = c.number("immediate");
        s.hasImm = true;
    } else if (op == "beq" || op == "bne") {
        s.reg = c.reg("source");
        c.expect(",", "after register");
        s.imm = c.number("comparison value");
        s.hasImm = true;
        c.expect(",", "after comparison value");
        s.target = c.next("branch target label").text;
    } else if (op == "nop") {
        if (isNumber(c.peek())) {
            Word n = c.number("repeat count");
            if (n == 0 || n > 1000)
                c.fail("nop repeat count must be in [1, 1000]");
            s.count = static_cast<int>(n);
        }
    } else if (op == "fence" || op == "halt") {
        // no operands
    } else {
        c.fail("unknown mnemonic '" + op + "'");
    }
}

Cond parseCond(Cur &c);

Cond
parseAtom(Cur &c)
{
    Cond n;
    n.line = c.line();
    if (c.accept("(")) {
        n = parseCond(c);
        c.expect(")", "to close the condition");
        return n;
    }
    if (c.accept("!")) {
        n.kind = Cond::Kind::Not;
        n.kids.push_back(parseAtom(c));
        return n;
    }
    const Token &t = c.next("condition term");
    int proc = procNumber(t.text);
    if (proc >= 0 && c.accept(":")) {
        n.kind = Cond::Kind::RegTerm;
        n.proc = proc;
        n.reg = c.reg("register");
    } else if (proc >= 0 && c.peek() != "==" && c.peek() != "!=") {
        c.fail("expected ':' after processor '" + t.text + "'");
    } else {
        n.kind = Cond::Kind::MemTerm;
        n.loc = t.text;
        if (isNumber(t.text))
            c.fail("expected a location or P<n>:r<m>, got '" + t.text +
                   "'");
    }
    const Token &cmp = c.next("'==' or '!='");
    if (cmp.text == "==")
        n.op = CmpOp::Eq;
    else if (cmp.text == "!=")
        n.op = CmpOp::Ne;
    else
        c.fail("expected '==' or '!=', got '" + cmp.text + "'");
    n.value = c.number("comparison value");
    return n;
}

Cond
parseConj(Cur &c)
{
    Cond first = parseAtom(c);
    if (c.peek() != "&&")
        return first;
    Cond n;
    n.kind = Cond::Kind::And;
    n.line = first.line;
    n.kids.push_back(std::move(first));
    while (c.accept("&&"))
        n.kids.push_back(parseAtom(c));
    return n;
}

Cond
parseCond(Cur &c)
{
    Cond first = parseConj(c);
    if (c.peek() != "||")
        return first;
    Cond n;
    n.kind = Cond::Kind::Or;
    n.line = first.line;
    n.kids.push_back(std::move(first));
    while (c.accept("||"))
        n.kids.push_back(parseConj(c));
    return n;
}

/** "some/dir/name.litmus" → "name". */
std::string
fileStem(const std::string &path)
{
    std::size_t slash = path.find_last_of("/\\");
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = base.find_last_of('.');
    return dot == std::string::npos || dot == 0 ? base
                                                : base.substr(0, dot);
}

} // namespace

LitmusTest
parseLitmus(const std::string &source, const std::string &file)
{
    LitmusTest t;
    t.file = file;
    t.name = fileStem(file);

    Cur c(tokenizeAll(source, file), file);

    // Optional name line.
    if (lower(c.peek()) == "name") {
        c.next("name");
        t.name = c.next("test name").text;
    }

    // Init section.
    if (lower(c.peek()) != "init")
        c.fail("expected 'init' section, got " + c.describeHere());
    c.next("init");
    c.expect("{", "after 'init'");
    while (!c.accept("}")) {
        InitEntry e;
        const Token &loc = c.next("location name (or '}')");
        e.loc = loc.text;
        e.line = loc.line;
        if (isNumber(e.loc) || isRegToken(e.loc))
            c.fail("bad location name '" + e.loc + "'");
        for (const InitEntry &prev : t.inits) {
            if (prev.loc == e.loc)
                c.fail("location '" + e.loc + "' already declared");
        }
        c.expect("=", "in init entry");
        e.value = c.number("initial value");
        if (lower(c.peek()) == "sync") {
            c.next("sync");
            e.sync = true;
        }
        c.expect(";", "to end the init entry");
        t.inits.push_back(std::move(e));
    }

    // Table header: P0 | P1 | ... ;
    std::vector<Token> header;
    {
        int expect_proc = 0;
        for (;;) {
            const Token &p = c.next("processor header 'P<n>'");
            if (procNumber(p.text) != expect_proc) {
                throw LitmusError(file, p.line,
                                  "expected processor header 'P" +
                                      std::to_string(expect_proc) +
                                      "', got '" + p.text + "'");
            }
            ++expect_proc;
            if (c.accept(";"))
                break;
            c.expect("|", "between processor headers");
        }
        t.procs.resize(static_cast<std::size_t>(expect_proc));
    }

    // Statement rows until the clause keyword.
    while (!c.done() && lower(c.peek()) != "exists" &&
           lower(c.peek()) != "forbidden") {
        std::size_t col = 0;
        for (;;) {
            if (col >= t.procs.size()) {
                c.fail("row has more cells than the " +
                       std::to_string(t.procs.size()) +
                       " declared processors");
            }
            // One cell: [label ':'] [insn], ending at '|' or ';'.
            if (c.peek() != "|" && c.peek() != ";") {
                Stmt s;
                const Token &first = c.next("label or mnemonic");
                s.line = first.line;
                std::string word = first.text;
                if (c.accept(":")) {
                    if (isNumber(word) || isRegToken(word))
                        c.fail("bad label name '" + word + "'");
                    s.label = word;
                    word.clear();
                    if (c.peek() != "|" && c.peek() != ";")
                        word = c.next("mnemonic").text;
                }
                if (!word.empty()) {
                    s.mnemonic = lower(word);
                    parseInsn(c, s);
                }
                if (c.peek() != "|" && c.peek() != ";") {
                    c.fail("trailing tokens in cell: " + c.describeHere() +
                           " (is a '|' or ';' missing?)");
                }
                t.procs[col].push_back(std::move(s));
            }
            if (c.accept(";"))
                break;
            c.expect("|", "between cells");
            ++col;
        }
    }

    // Clause.
    if (c.done())
        c.fail("missing final 'exists' or 'forbidden' clause");
    {
        const Token &kw = c.next("clause keyword");
        t.clause.line = kw.line;
        if (lower(kw.text) == "exists") {
            t.clause.kind = ClauseKind::Exists;
        } else {
            t.clause.kind = ClauseKind::Forbidden;
            if (lower(c.peek()) == "always") {
                c.next("always");
                t.clause.always = true;
            }
        }
        c.expect("(", "to open the clause condition");
        t.clause.cond = parseCond(c);
        c.expect(")", "to close the clause condition");
    }
    if (!c.done())
        c.fail("unexpected tokens after the final clause: " +
               c.describeHere());
    return t;
}

LitmusTest
parseLitmusFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw LitmusError(path, 0, "cannot open file");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseLitmus(buf.str(), path);
}

std::string
toString(const Cond &c)
{
    std::ostringstream oss;
    switch (c.kind) {
      case Cond::Kind::And:
      case Cond::Kind::Or: {
        const char *sep = c.kind == Cond::Kind::And ? " && " : " || ";
        oss << "(";
        for (std::size_t i = 0; i < c.kids.size(); ++i) {
            if (i)
                oss << sep;
            oss << toString(c.kids[i]);
        }
        oss << ")";
        break;
      }
      case Cond::Kind::Not:
        oss << "!" << toString(c.kids.at(0));
        break;
      case Cond::Kind::RegTerm:
        oss << "P" << c.proc << ":r" << c.reg
            << (c.op == CmpOp::Eq ? " == " : " != ") << c.value;
        break;
      case Cond::Kind::MemTerm:
        oss << c.loc << (c.op == CmpOp::Eq ? " == " : " != ") << c.value;
        break;
    }
    return oss.str();
}

std::string
toString(const Clause &c)
{
    std::string head =
        c.kind == ClauseKind::Exists
            ? "exists"
            : (c.always ? "forbidden always" : "forbidden");
    std::string cond = toString(c.cond);
    if (cond.empty() || cond.front() != '(')
        cond = "(" + cond + ")";
    return head + " " + cond;
}

} // namespace litmus_dsl
} // namespace wo
