#include "litmus/runner.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <optional>
#include <ostream>
#include <sstream>

#include "core/drf0_checker.hh"
#include "core/sc_verifier.hh"
#include "litmus/expect.hh"
#include "obs/trace_export.hh"
#include "obs/trace_sink.hh"
#include "workload/campaign.hh"

namespace wo {
namespace litmus_dsl {

namespace {

/** Result of one (test, policy, variant, seed) job. */
struct JobOut
{
    bool ran = false;
    bool finished = false;
    bool hit = false;
    int scStatus = -1; ///< -1 unverified, 0 ok, 1 violation, 2 unknown
    std::string key;
    StatSet stats;
    CoverageMap cov; ///< this job's coverage (RunnerOptions::coverage)
};

/** Static description of one job (shared by all seeds of a cell). */
struct CellPlan
{
    PolicyKind policy;
    const MachineSpec *machine;
};

bool
scPromised(PolicyKind policy, bool drf0)
{
    switch (policy) {
      case PolicyKind::Sc:
        return true;
      case PolicyKind::Def1:
      case PolicyKind::Def2Drf0:
      case PolicyKind::Def2Drf1:
        // Weakly ordered hardware promises SC results exactly for
        // DRF0 software (the paper's Definition 2 contract; Definition
        // 1 is strictly stronger).
        return drf0;
      case PolicyKind::Relaxed:
        return false;
    }
    return false;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Keep file names portable: anything exotic becomes '_'. */
std::string
sanitizeForFile(const std::string &s)
{
    std::string out = s;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                  c == '.';
        if (!ok)
            c = '_';
    }
    return out;
}

/** Deterministic per-job trace file name (independent of threading). */
std::string
traceFileName(const std::string &stem, const std::string &test,
              PolicyKind policy, const std::string &variant, int seed_idx)
{
    return stem + "." + sanitizeForFile(test) + "." +
           sanitizeForFile(toString(policy)) + "." +
           sanitizeForFile(variant) + ".s" + std::to_string(seed_idx) +
           ".json";
}

} // namespace

std::vector<const MachineSpec *>
defaultMachines()
{
    return {&machineOrThrow("bus"), &machineOrThrow("net"),
            &machineOrThrow("net-u")};
}

std::vector<std::string>
findLitmusFiles(const std::vector<std::string> &paths)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        fs::path path(p);
        if (fs::is_directory(path)) {
            std::vector<std::string> here;
            for (const fs::directory_entry &e :
                 fs::directory_iterator(path)) {
                if (e.is_regular_file() &&
                    e.path().extension() == ".litmus") {
                    here.push_back(e.path().string());
                }
            }
            std::sort(here.begin(), here.end());
            files.insert(files.end(), here.begin(), here.end());
        } else if (fs::is_regular_file(path)) {
            files.push_back(path.string());
        } else {
            throw std::runtime_error("no such file or directory: " + p);
        }
    }
    return files;
}

CorpusReport
runCorpus(const std::vector<CompiledLitmus> &tests,
          const RunnerOptions &options,
          const std::vector<const MachineSpec *> &machines)
{
    CorpusReport report;
    report.seeds = options.seeds;
    report.baseSeed = options.baseSeed;
    for (const MachineSpec *m : machines) {
        MachineInfo mi;
        mi.name = m->name;
        mi.protocol = m->cached ? toString(m->protocol) : "none";
        mi.cacheLevels = m->cached ? m->cacheLevels : 0;
        report.machines.push_back(std::move(mi));
    }

    Campaign campaign({options.threads, options.baseSeed});
    Drf0Memo drf0_memo;

    for (const CompiledLitmus &test : tests) {
        TestReport tr;
        tr.name = test.name;
        tr.file = test.file;
        tr.clause = toString(test.clause);

        // Sampled DRF0 verdict gates which policies promise SC results
        // for this program (spin loops rule out exhaustive enumeration).
        // The memo dedupes identical program bodies across the corpus.
        Drf0ProgramReport drf0 =
            options.drf0Memo
                ? drf0_memo.check(test.program, options.drf0Schedules,
                                  options.baseSeed)
                : checkProgramSampled(test.program,
                                      options.drf0Schedules,
                                      options.baseSeed);
        tr.drf0 = drf0.obeysDrf0;
        tr.drf0Bounded = drf0.bounded;

        std::vector<ObservedVar> vars = observedVars(test.clause.cond);

        // Flatten policy x machine x seed into one deterministic fan.
        std::vector<CellPlan> cells;
        for (PolicyKind pk : options.policies) {
            for (const MachineSpec *m : machines)
                cells.push_back({pk, m});
        }
        int per_cell = options.seeds;
        int num_jobs = static_cast<int>(cells.size()) * per_cell;

        std::vector<JobOut> outs = campaign.map<JobOut>(
            num_jobs, [&](const CampaignJob &job) {
                const CellPlan &plan =
                    cells[static_cast<std::size_t>(job.index) /
                          static_cast<std::size_t>(per_cell)];
                JobOut out;
                SystemConfig cfg =
                    plan.machine->config(plan.policy, job.seed);
                TraceBuffer trace_buf(options.traceMask);
                if (!options.tracePath.empty())
                    cfg.traceSink = &trace_buf;
                if (options.coverage)
                    cfg.coverage = &out.cov;
                try {
                    // Pooled path: reuse this worker thread's System
                    // for the cell (a reset replays bit-identically);
                    // fall back to a stack-local fresh construction
                    // when pooling is off.
                    std::optional<System> local;
                    System *sys_p;
                    if (options.systemPool) {
                        sys_p = &workerSystemPool().acquire(
                            plan.machine->name + "/" +
                                toString(plan.policy),
                            test.program, cfg);
                    } else {
                        local.emplace(test.program, cfg);
                        sys_p = &*local;
                    }
                    System &sys = *sys_p;
                    out.ran = true;
                    out.finished = sys.run();
                    if (out.finished) {
                        RunResult r = sys.result();
                        // Clause locations the run never touched read
                        // as their declared initial values.
                        for (const auto &[loc, addr] : test.addrOf) {
                            if (!r.finalMemory.count(addr)) {
                                r.finalMemory[addr] =
                                    test.program.initialValue(addr);
                            }
                        }
                        out.hit =
                            evalCond(test.clause.cond, r, test.addrOf);
                        out.key = outcomeKey(vars, r, test.addrOf);
                        if (options.verify) {
                            ScReport sc = verifySc(
                                sys.trace(),
                                {options.maxVerifyStates});
                            out.scStatus =
                                sc.verdict == ScVerdict::Sc ? 0
                                : sc.verdict == ScVerdict::NotSc ? 1
                                                                 : 2;
                        }
                    }
                    out.stats = sys.stats();
                    // A pooled instance outlives this job; the trace
                    // buffer and coverage map it may point at do not.
                    if (options.systemPool && cfg.traceSink)
                        sys.setTraceSink(nullptr);
                    if (options.systemPool && cfg.coverage)
                        sys.setCoverage(nullptr);
                } catch (const std::invalid_argument &) {
                    out.ran = false; // illegal config for this policy
                }
                if (out.ran && !options.tracePath.empty()) {
                    std::ofstream tf(traceFileName(
                        options.tracePath, test.name, plan.policy,
                        plan.machine->name, job.index % per_cell));
                    writeChromeTrace(tf, trace_buf.events());
                }
                return out;
            });

        // Aggregate in job order (byte-identical for any thread count).
        for (std::size_t ci = 0; ci < cells.size(); ++ci) {
            CellReport cell;
            cell.policy = cells[ci].policy;
            cell.variant = cells[ci].machine->name;
            for (int s = 0; s < per_cell; ++s) {
                const JobOut &o =
                    outs[ci * static_cast<std::size_t>(per_cell) +
                         static_cast<std::size_t>(s)];
                if (options.coverage)
                    report.coverage.merge(o.cov);
                if (!o.ran)
                    continue;
                ++cell.runs;
                if (!o.finished)
                    continue;
                ++cell.finished;
                if (o.hit)
                    ++cell.hits;
                if (o.scStatus == 0)
                    ++cell.scOk;
                else if (o.scStatus == 1)
                    ++cell.scViolations;
                else if (o.scStatus == 2)
                    ++cell.scUnknown;
                ++cell.histogram[o.key];
                report.stats.merge(o.stats);
            }

            bool promised = scPromised(cell.policy, tr.drf0);
            if (test.clause.kind == ClauseKind::Forbidden) {
                cell.enforced = promised || test.clause.always;
                if (cell.enforced && cell.hits > 0) {
                    cell.pass = false;
                    cell.note = "forbidden outcome observed";
                    tr.failures.push_back(
                        toString(cell.policy) + "/" + cell.variant +
                        ": forbidden outcome observed " +
                        std::to_string(cell.hits) + "x");
                } else if (!cell.enforced && cell.hits > 0) {
                    cell.note = "permitted";
                }
            }
            if (options.verify && promised && cell.scViolations > 0) {
                cell.pass = false;
                cell.note = cell.note.empty()
                                ? "non-SC execution"
                                : cell.note + "; non-SC execution";
                tr.failures.push_back(
                    toString(cell.policy) + "/" + cell.variant + ": " +
                    std::to_string(cell.scViolations) +
                    " executions proven not sequentially consistent");
            }
            tr.cells.push_back(std::move(cell));
        }

        // Differential axiomatic stage: every simulator-observed
        // outcome must be allowed by the model bounding its policy.
        if (options.axiomCheck) {
            axiom::ModelContext mctx;
            mctx.programDrf0 = tr.drf0;
            axiom::AxiomResult ax =
                axiom::enumerateAllowed(test.program, axiom::axiomModels(),
                                        mctx, options.axiomLimits);
            tr.axiomChecked = true;
            tr.axiomComplete = ax.complete;
            axiom::AddrNamer namer = axiom::namerFrom(test.addrOf);

            // Project allowed RunResults onto the clause's outcome
            // keys, filling untouched clause locations with their
            // initial values exactly as the per-job path does.
            auto project = [&](const RunResult &r) {
                RunResult filled = r;
                for (const auto &[loc, addr] : test.addrOf) {
                    if (!filled.finalMemory.count(addr)) {
                        filled.finalMemory[addr] =
                            test.program.initialValue(addr);
                    }
                }
                return outcomeKey(vars, filled, test.addrOf);
            };
            std::map<std::string, std::set<std::string>> allowed_keys;
            for (const auto &[model, set] : ax.allowed) {
                std::set<std::string> &keys = allowed_keys[model];
                for (const RunResult &r : set)
                    keys.insert(project(r));
                ModelAllowedReport mar;
                mar.model = model;
                mar.outcomes.assign(keys.begin(), keys.end());
                tr.axiomAllowed.push_back(std::move(mar));
            }

            for (CellReport &cell : tr.cells) {
                const axiom::AxiomaticModel *model =
                    axiom::modelForPolicy(cell.policy);
                cell.axiomModel = model->name();
                const std::set<std::string> &keys =
                    allowed_keys[model->name()];
                for (const auto &[key, count] : cell.histogram) {
                    if (!keys.count(key))
                        cell.axiomForbidden.push_back(key);
                }
                if (cell.axiomForbidden.empty())
                    continue;
                if (!ax.complete) {
                    // A truncated allowed set is a lower bound:
                    // absence proves nothing, so only advise.
                    cell.note = cell.note.empty()
                                    ? "axiom-incomplete"
                                    : cell.note + "; axiom-incomplete";
                    continue;
                }
                cell.pass = false;
                cell.note = cell.note.empty()
                                ? "axiom-forbidden outcome"
                                : cell.note + "; axiom-forbidden outcome";
                const std::string &key = cell.axiomForbidden.front();
                axiom::Explanation ex = axiom::explainOutcome(
                    test.program, {model}, mctx,
                    [&](const RunResult &r) { return project(r) == key; },
                    options.axiomLimits, namer);
                std::string why;
                if (!ex.matched) {
                    why = "no candidate execution reaches this outcome";
                } else if (!ex.models[0].allowed &&
                           !ex.models[0].cycle.empty()) {
                    why = "witness cycle: " + ex.models[0].cycle;
                } else {
                    why = "rejected by the model";
                }
                tr.failures.push_back(
                    toString(cell.policy) + "/" + cell.variant +
                    ": observed {" + key + "} forbidden by model " +
                    model->name() + " — " + why);
            }

            // Coverage: observed vs allowed per policy over its whole
            // variant fan (allowed-but-never-observed outcomes flag
            // behaviors the machines cannot or did not produce).
            for (PolicyKind pk : options.policies) {
                PolicyCoverage cov;
                cov.policy = pk;
                const axiom::AxiomaticModel *model =
                    axiom::modelForPolicy(pk);
                cov.model = model->name();
                std::set<std::string> seen;
                for (const CellReport &cell : tr.cells) {
                    if (cell.policy != pk)
                        continue;
                    for (const auto &[key, count] : cell.histogram)
                        seen.insert(key);
                    // Per-machine slice: which allowed outcomes this
                    // variant itself produced.
                    MachineCoverage mc;
                    mc.variant = cell.variant;
                    for (const std::string &key :
                         allowed_keys[model->name()]) {
                        if (cell.histogram.count(key))
                            mc.observed.push_back(key);
                        else
                            mc.unobserved.push_back(key);
                    }
                    // Outcome coverage: seed every allowed key for
                    // this cell (count 0 = allowed but unobserved),
                    // bump the observed ones by their histogram
                    // count. Cells the policy cannot run on (runs 0)
                    // are not seeded — those are impossibilities, not
                    // gaps.
                    if (options.coverage && cell.runs > 0) {
                        const std::string stem =
                            tr.name + "\t" + toString(pk) + "\t" +
                            cell.variant + "\t";
                        for (const auto &[key, count] :
                             cell.histogram) {
                            report.coverage.hitKey(
                                CoverageMap::Dim::Outcome, stem + key,
                                static_cast<std::uint64_t>(count));
                        }
                        for (const std::string &key : mc.unobserved) {
                            report.coverage.internKey(
                                CoverageMap::Dim::Outcome, stem + key);
                        }
                    }
                    cov.machines.push_back(std::move(mc));
                }
                for (const std::string &key :
                     allowed_keys[model->name()]) {
                    if (seen.count(key))
                        cov.observed.push_back(key);
                    else
                        cov.unobserved.push_back(key);
                }
                tr.coverage.push_back(std::move(cov));
            }
        }

        // `exists` is judged over the whole Relaxed fan: the weak
        // machine must exhibit the outcome somewhere.
        if (test.clause.kind == ClauseKind::Exists) {
            bool have_relaxed = false;
            int relaxed_hits = 0;
            for (const CellReport &cell : tr.cells) {
                if (cell.policy == PolicyKind::Relaxed) {
                    have_relaxed = true;
                    relaxed_hits += cell.hits;
                }
            }
            if (have_relaxed && relaxed_hits == 0) {
                tr.failures.push_back(
                    "exists condition never observed under Relaxed");
            }
        }

        tr.pass = tr.failures.empty();
        report.pass = report.pass && tr.pass;
        report.tests.push_back(std::move(tr));
    }
    return report;
}

void
printReport(std::ostream &os, const CorpusReport &report, bool histograms,
            bool coverage)
{
    for (const TestReport &tr : report.tests) {
        os << "== " << tr.name << "  (" << tr.file << ")\n";
        os << "   clause : " << tr.clause << "\n";
        os << "   program: "
           << (tr.drf0 ? "DRF0 (sampled)" : "racy (sampled)") << "\n";
        if (tr.axiomChecked) {
            os << "   axiom  : "
               << (tr.axiomComplete ? "complete" : "truncated");
            for (const ModelAllowedReport &mar : tr.axiomAllowed)
                os << "  " << mar.model << "=" << mar.outcomes.size();
            os << "\n";
        }
        os << "   " << std::left << std::setw(14) << "policy"
           << std::setw(9) << "variant" << std::right << std::setw(6)
           << "runs" << std::setw(6) << "done" << std::setw(6) << "hits"
           << "  " << std::left << std::setw(15) << "sc:ok/not/unk"
           << "verdict\n";
        for (const CellReport &cell : tr.cells) {
            std::string sc = std::to_string(cell.scOk) + "/" +
                             std::to_string(cell.scViolations) + "/" +
                             std::to_string(cell.scUnknown);
            std::string verdict =
                !cell.pass ? "FAIL"
                : cell.enforced ? "pass"
                                : "info";
            if (!cell.note.empty())
                verdict += " (" + cell.note + ")";
            os << "   " << std::left << std::setw(14)
               << toString(cell.policy) << std::setw(9) << cell.variant
               << std::right << std::setw(6) << cell.runs << std::setw(6)
               << cell.finished << std::setw(6) << cell.hits << "  "
               << std::left << std::setw(15) << sc << verdict << "\n";
        }
        if (histograms) {
            for (const CellReport &cell : tr.cells) {
                if (cell.histogram.empty())
                    continue;
                os << "   outcomes [" << toString(cell.policy) << "/"
                   << cell.variant << "]:";
                for (const auto &[key, count] : cell.histogram)
                    os << "  " << count << ":> {" << key << "}";
                os << "\n";
            }
        }
        if (coverage) {
            for (const PolicyCoverage &cov : tr.coverage) {
                os << "   coverage [" << toString(cov.policy) << " via "
                   << cov.model << "]: observed " << cov.observed.size()
                   << "/" << (cov.observed.size() + cov.unobserved.size());
                if (!cov.unobserved.empty()) {
                    os << "; unobserved:";
                    for (const std::string &key : cov.unobserved)
                        os << " {" << key << "}";
                }
                os << "\n";
                for (const MachineCoverage &mc : cov.machines) {
                    os << "     " << std::left << std::setw(9)
                       << mc.variant << std::right << mc.observed.size()
                       << "/"
                       << (mc.observed.size() + mc.unobserved.size());
                    // Flag only the gaps a sibling machine closed: an
                    // outcome nobody produced is already reported on
                    // the aggregate line above.
                    std::vector<std::string> lag;
                    for (const std::string &key : mc.unobserved) {
                        bool somewhere = false;
                        for (const std::string &o : cov.observed)
                            somewhere = somewhere || o == key;
                        if (somewhere)
                            lag.push_back(key);
                    }
                    if (!lag.empty()) {
                        os << "; missing here:";
                        for (const std::string &key : lag)
                            os << " {" << key << "}";
                    }
                    os << "\n";
                }
            }
        }
        os << "   " << (tr.pass ? "PASS" : "FAIL") << "\n";
        for (const std::string &f : tr.failures)
            os << "     - " << f << "\n";
        os << "\n";
    }

    int passed = 0;
    for (const TestReport &tr : report.tests)
        passed += tr.pass ? 1 : 0;
    os << (report.pass ? "PASS" : "FAIL") << ": " << passed << "/"
       << report.tests.size() << " tests passed (" << report.seeds
       << " seeds per policy/variant, base seed " << report.baseSeed
       << ")\n";
    for (const TestReport &tr : report.tests) {
        if (!tr.pass)
            os << "  failed: " << tr.name << " (" << tr.file << ")\n";
    }
}

void
writeJsonReport(std::ostream &os, const CorpusReport &report)
{
    os << "{\n";
    os << "  \"seeds\": " << report.seeds << ",\n";
    os << "  \"baseSeed\": " << report.baseSeed << ",\n";
    os << "  \"pass\": " << (report.pass ? "true" : "false") << ",\n";
    os << "  \"tests\": [\n";
    for (std::size_t t = 0; t < report.tests.size(); ++t) {
        const TestReport &tr = report.tests[t];
        os << "    {\n";
        os << "      \"name\": \"" << jsonEscape(tr.name) << "\",\n";
        os << "      \"file\": \"" << jsonEscape(tr.file) << "\",\n";
        os << "      \"clause\": \"" << jsonEscape(tr.clause) << "\",\n";
        os << "      \"drf0\": " << (tr.drf0 ? "true" : "false") << ",\n";
        os << "      \"drf0Bounded\": "
           << (tr.drf0Bounded ? "true" : "false") << ",\n";
        os << "      \"axiom\": {\"checked\": "
           << (tr.axiomChecked ? "true" : "false")
           << ", \"complete\": " << (tr.axiomComplete ? "true" : "false")
           << ", \"allowed\": {";
        for (std::size_t i = 0; i < tr.axiomAllowed.size(); ++i) {
            const ModelAllowedReport &mar = tr.axiomAllowed[i];
            os << (i ? ", " : "") << "\"" << jsonEscape(mar.model)
               << "\": [";
            for (std::size_t k = 0; k < mar.outcomes.size(); ++k) {
                os << (k ? ", " : "") << "\""
                   << jsonEscape(mar.outcomes[k]) << "\"";
            }
            os << "]";
        }
        os << "}, \"coverage\": [";
        for (std::size_t i = 0; i < tr.coverage.size(); ++i) {
            const PolicyCoverage &cov = tr.coverage[i];
            os << (i ? ", " : "") << "{\"policy\": \""
               << toString(cov.policy) << "\", \"model\": \""
               << jsonEscape(cov.model) << "\", \"observed\": [";
            for (std::size_t k = 0; k < cov.observed.size(); ++k) {
                os << (k ? ", " : "") << "\""
                   << jsonEscape(cov.observed[k]) << "\"";
            }
            os << "], \"unobserved\": [";
            for (std::size_t k = 0; k < cov.unobserved.size(); ++k) {
                os << (k ? ", " : "") << "\""
                   << jsonEscape(cov.unobserved[k]) << "\"";
            }
            os << "], \"machines\": [";
            for (std::size_t m = 0; m < cov.machines.size(); ++m) {
                const MachineCoverage &mc = cov.machines[m];
                os << (m ? ", " : "") << "{\"variant\": \""
                   << jsonEscape(mc.variant) << "\", \"observed\": [";
                for (std::size_t k = 0; k < mc.observed.size(); ++k) {
                    os << (k ? ", " : "") << "\""
                       << jsonEscape(mc.observed[k]) << "\"";
                }
                os << "], \"unobserved\": [";
                for (std::size_t k = 0; k < mc.unobserved.size(); ++k) {
                    os << (k ? ", " : "") << "\""
                       << jsonEscape(mc.unobserved[k]) << "\"";
                }
                os << "]}";
            }
            os << "]}";
        }
        os << "]},\n";
        os << "      \"pass\": " << (tr.pass ? "true" : "false") << ",\n";
        os << "      \"failures\": [";
        for (std::size_t i = 0; i < tr.failures.size(); ++i) {
            os << (i ? ", " : "") << "\"" << jsonEscape(tr.failures[i])
               << "\"";
        }
        os << "],\n";
        os << "      \"cells\": [\n";
        for (std::size_t c = 0; c < tr.cells.size(); ++c) {
            const CellReport &cell = tr.cells[c];
            os << "        {\"policy\": \"" << toString(cell.policy)
               << "\", \"variant\": \"" << jsonEscape(cell.variant)
               << "\", \"runs\": " << cell.runs
               << ", \"finished\": " << cell.finished
               << ", \"hits\": " << cell.hits
               << ", \"scOk\": " << cell.scOk
               << ", \"scViolations\": " << cell.scViolations
               << ", \"scUnknown\": " << cell.scUnknown
               << ", \"enforced\": " << (cell.enforced ? "true" : "false")
               << ", \"pass\": " << (cell.pass ? "true" : "false")
               << ", \"axiomModel\": \"" << jsonEscape(cell.axiomModel)
               << "\", \"axiomForbidden\": [";
            for (std::size_t k = 0; k < cell.axiomForbidden.size(); ++k) {
                os << (k ? ", " : "") << "\""
                   << jsonEscape(cell.axiomForbidden[k]) << "\"";
            }
            os << "], \"histogram\": {";
            bool first = true;
            for (const auto &[key, count] : cell.histogram) {
                os << (first ? "" : ", ") << "\"" << jsonEscape(key)
                   << "\": " << count;
                first = false;
            }
            os << "}}" << (c + 1 < tr.cells.size() ? "," : "") << "\n";
        }
        os << "      ]\n";
        os << "    }" << (t + 1 < report.tests.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"stats\": ";
    report.stats.dumpJson(os, "", 2);
    os << "\n}\n";
}

StandingCoverage
standingCoverage(const CorpusReport &report)
{
    StandingCoverage st;
    st.runs = 1;
    st.meta.insert({"seeds", std::to_string(report.seeds)});
    st.meta.insert({"baseSeed", std::to_string(report.baseSeed)});
    for (const MachineInfo &mi : report.machines)
        st.addMachine(mi.name, mi.protocol, mi.cacheLevels);
    st.addCoverage(report.coverage);
    return st;
}

void
writeCoverageReport(std::ostream &os, const CorpusReport &report)
{
    standingCoverage(report).write(os);
}

} // namespace litmus_dsl
} // namespace wo
