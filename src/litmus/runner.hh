/**
 * @file
 * Batch litmus runner: fan a corpus of compiled litmus tests across
 * seeds x consistency policies x system configurations on the Campaign
 * engine, evaluate each run against the test's clause, and aggregate
 * per-test outcome histograms plus PASS/FAIL verdicts.
 *
 * Determinism contract: every job's RNG seed derives from (baseSeed, job
 * index) only and results merge in job-index order, so reports are
 * byte-identical for any --threads value.
 *
 * Verdict semantics (per test):
 *  - `forbidden (c)`: c must never be observed under a policy that
 *    promises sequential consistency for the program — SC and Def1
 *    always, the Definition 2 implementations when the program is DRF0
 *    (sampled check). Hits under Relaxed (or under Def2 for racy
 *    programs) are contract-permitted and only reported.
 *  - `forbidden always (c)`: enforced under every policy (coherence and
 *    fence tests, whose guarantee survives even the Relaxed machine).
 *  - `exists (c)`: c must be observed at least once under the Relaxed
 *    policy across the seed/config fan (the weak machine exhibits it);
 *    other policies only report.
 *  - Under the SC policy every recorded trace must additionally pass the
 *    SC verifier; under Def1/Def2 policies the same holds when the
 *    program is DRF0 (the paper's Definition 2 contract).
 */

#ifndef WO_LITMUS_RUNNER_HH
#define WO_LITMUS_RUNNER_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "axiom/enumerate.hh"
#include "consistency/policy.hh"
#include "litmus/compiler.hh"
#include "obs/coverage.hh"
#include "obs/coverage_report.hh"
#include "obs/trace_event.hh"
#include "sim/stats.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"

namespace wo {
namespace litmus_dsl {

/**
 * The default three-machine set from the machine registry: "bus"
 * (cached, +WB under Relaxed), "net" (cached, warm, jittered network),
 * and "net-u" (uncached network, whose banked memory reorders
 * same-processor writes — the Figure 1 case-2 configuration).
 *
 * Policies whose mechanisms need a cache (the Definition 2
 * implementations keep reserve bits there) are skipped on uncached
 * machines — their cells report runs = 0.
 */
std::vector<const MachineSpec *> defaultMachines();

/** Runner knobs. */
struct RunnerOptions
{
    int seeds = 20;              ///< seeds per (policy, variant)
    int threads = 0;             ///< 0: WO_THREADS / hardware
    std::uint64_t baseSeed = 1;  ///< campaign seed-stream base
    bool verify = true;          ///< SC-verify every recorded trace
    std::uint64_t maxVerifyStates = 1000000;
    int drf0Schedules = 200;     ///< sampled DRF0 check per test

    /** Memoize sampled DRF0 verdicts by program content hash, so
     * duplicate program bodies (and repeated corpus passes sharing a
     * runner) are checked once. Verdicts are unchanged — the memo
     * returns the identical report. */
    bool drf0Memo = true;

    /**
     * Serve each job's System from the worker thread's SystemPool
     * (keyed by machine/policy cell) instead of constructing fresh.
     * A reset System replays a job bit-identically, so reports do not
     * depend on this flag — it exists for differential testing and as
     * an escape hatch (`wo-litmus --no-pool`).
     */
    bool systemPool = true;

    /**
     * Structured-trace output stem; empty disables tracing (the
     * default, with zero effect on reports). When set, every job runs
     * with a private TraceBuffer and writes a Chrome-trace JSON file
     * named <stem>.<test>.<policy>.<variant>.s<seed-index>.json — one
     * file per job, so reports and trace files stay byte-identical for
     * any --threads value.
     */
    std::string tracePath;

    /** Component filter for trace events (see parseTraceFilter). */
    std::uint32_t traceMask = kAllTraceComps;

    /**
     * Record coverage counters (protocol transitions, stall reasons,
     * latency buckets, outcome coverage) into CorpusReport::coverage.
     * Each job runs with a private CoverageMap merged in job-index
     * order, so the merged map — like every report — is byte-identical
     * for any --threads value. Off by default: with coverage off the
     * instrumented sites cost one thread-local load and branch each,
     * and reports are bit-unchanged either way.
     */
    bool coverage = false;

    std::vector<PolicyKind> policies = {
        PolicyKind::Sc,
        PolicyKind::Def1,
        PolicyKind::Def2Drf0,
        PolicyKind::Relaxed,
    };

    /**
     * Differential axiomatic stage (on by default): enumerate each
     * test's allowed-outcome sets under the axiomatic models and fail
     * any cell whose simulator-observed outcome the policy's bounding
     * model forbids — SC observations must be "sc"-allowed, the weak
     * ordering policies "drf0sc"-allowed, Relaxed "wb"-allowed. A
     * forbidden observation's failure message carries the witness
     * cycle (or reports that no candidate execution reaches the
     * outcome at all). When enumeration is truncated by a cap the
     * verdict is advisory only (absence from a lower bound proves
     * nothing).
     */
    bool axiomCheck = true;

    /** Caps for the axiomatic enumeration. */
    axiom::AxiomLimits axiomLimits;
};

/** Aggregate of one test x policy x variant cell. */
struct CellReport
{
    PolicyKind policy = PolicyKind::Sc;
    std::string variant;

    int runs = 0;
    int finished = 0;    ///< runs where every processor halted
    int hits = 0;        ///< finished runs satisfying the clause condition
    int scOk = 0;        ///< traces the SC verifier accepted
    int scViolations = 0;///< traces proven not sequentially consistent
    int scUnknown = 0;   ///< verifier state-cap exceeded

    bool enforced = false; ///< this cell's hits gate PASS/FAIL
    bool pass = true;
    std::string note; ///< short reason shown in the table

    /** Outcome-key -> count over finished runs. */
    std::map<std::string, int> histogram;

    /** Axiomatic model bounding this cell's policy (empty when the
     * axiom stage is off). */
    std::string axiomModel;

    /** Observed outcome keys the bounding model forbids. Fails the
     * cell when enumeration was complete. */
    std::vector<std::string> axiomForbidden;
};

/** One model's allowed outcomes, projected to clause outcome keys. */
struct ModelAllowedReport
{
    std::string model;
    std::vector<std::string> outcomes; ///< sorted outcome keys
};

/** Observed vs allowed outcomes of one policy on one machine variant.
 * An outcome unobserved on a machine but observed on a sibling points
 * at that machine (topology, buffering), not at the policy. */
struct MachineCoverage
{
    std::string variant; ///< machine-registry name

    std::vector<std::string> observed;   ///< allowed and seen here
    std::vector<std::string> unobserved; ///< allowed, never seen here
};

/** Observed vs allowed outcomes of one policy over all its variants. */
struct PolicyCoverage
{
    PolicyKind policy = PolicyKind::Sc;
    std::string model; ///< bounding model

    std::vector<std::string> observed;   ///< allowed and seen
    std::vector<std::string> unobserved; ///< allowed, never seen

    /** Per-machine breakdown, cell order (union equals the aggregate). */
    std::vector<MachineCoverage> machines;
};

/** Aggregate of one test over the whole fan. */
struct TestReport
{
    std::string name;
    std::string file;
    std::string clause; ///< rendered source form

    bool drf0 = false;        ///< sampled DRF0 verdict
    bool drf0Bounded = true;  ///< verdict is a bounded guarantee

    std::vector<CellReport> cells; ///< policy-major, variant-minor order

    bool axiomChecked = false; ///< the axiomatic stage ran
    bool axiomComplete = true; ///< enumeration was not truncated
    std::vector<ModelAllowedReport> axiomAllowed; ///< per model, sorted
    std::vector<PolicyCoverage> coverage; ///< per policy, options order

    bool pass = true;
    std::vector<std::string> failures; ///< human-readable reasons
};

/** Registry metadata of one machine in the fan (carried into the
 * standing coverage report so diffs survive registry growth). */
struct MachineInfo
{
    std::string name;
    std::string protocol; ///< "msi".."mesif", or "none" (uncached)
    int cacheLevels = 0;  ///< 0 for uncached machines
};

/** Whole-corpus result. */
struct CorpusReport
{
    std::vector<TestReport> tests;
    bool pass = true;
    int seeds = 0;
    std::uint64_t baseSeed = 1;

    /** Simulation stats merged over every run, in job order. */
    StatSet stats;

    /** Coverage counters merged over every run, in job order (empty
     * unless RunnerOptions::coverage was set). Outcome-dimension keys
     * are "test\tpolicy\tmachine\toutcome key" composites. */
    CoverageMap coverage;

    /** The machine fan this corpus ran against. */
    std::vector<MachineInfo> machines;
};

/**
 * Collect .litmus files from files and/or directories (directories are
 * scanned non-recursively, entries sorted by name). Throws
 * std::runtime_error for paths that do not exist.
 */
std::vector<std::string>
findLitmusFiles(const std::vector<std::string> &paths);

/** Run the corpus; deterministic for fixed (options, machines). */
CorpusReport runCorpus(const std::vector<CompiledLitmus> &tests,
                       const RunnerOptions &options,
                       const std::vector<const MachineSpec *> &machines =
                           defaultMachines());

/** Human-readable report: per-test tables, histograms, final summary.
 * @p coverage adds the per-policy observed/unobserved outcome lines
 * (wo-litmus --coverage-report). */
void printReport(std::ostream &os, const CorpusReport &report,
                 bool histograms = true, bool coverage = false);

/** Machine-readable JSON report (stable key order). */
void writeJsonReport(std::ostream &os, const CorpusReport &report);

/** Build a one-run StandingCoverage (runs = 1, seeds/baseSeed meta,
 * machine metadata, every CoverageMap counter) from a corpus run with
 * RunnerOptions::coverage set. wo-litmus --coverage-report=FILE merges
 * this into the existing on-disk report. */
StandingCoverage standingCoverage(const CorpusReport &report);

/** Write standingCoverage(report) in the canonical wocover format
 * (stable section order, sorted lines — byte-identical for any
 * --threads value). wo-cover renders heatmaps, lists gaps and diffs
 * two such reports. */
void writeCoverageReport(std::ostream &os, const CorpusReport &report);

} // namespace litmus_dsl
} // namespace wo

#endif // WO_LITMUS_RUNNER_HH
