#include "litmus/expect.hh"

#include <sstream>
#include <tuple>

namespace wo {
namespace litmus_dsl {

namespace {

Word
regValue(const RunResult &r, int proc, int reg)
{
    if (proc < 0 || proc >= static_cast<int>(r.registers.size()))
        return 0;
    const std::vector<Word> &regs =
        r.registers[static_cast<std::size_t>(proc)];
    if (reg < 0 || reg >= static_cast<int>(regs.size()))
        return 0;
    return regs[static_cast<std::size_t>(reg)];
}

Word
memValue(const RunResult &r, const std::map<std::string, Addr> &addrOf,
         const std::string &loc)
{
    auto ait = addrOf.find(loc);
    if (ait == addrOf.end())
        return 0;
    auto mit = r.finalMemory.find(ait->second);
    return mit == r.finalMemory.end() ? 0 : mit->second;
}

void
collectVars(const Cond &c, std::vector<ObservedVar> &out)
{
    switch (c.kind) {
      case Cond::Kind::And:
      case Cond::Kind::Or:
      case Cond::Kind::Not:
        for (const Cond &k : c.kids)
            collectVars(k, out);
        break;
      case Cond::Kind::RegTerm:
      case Cond::Kind::MemTerm: {
        ObservedVar v;
        if (c.kind == Cond::Kind::RegTerm) {
            v.isReg = true;
            v.proc = c.proc;
            v.reg = c.reg;
        } else {
            v.isReg = false;
            v.loc = c.loc;
        }
        for (const ObservedVar &seen : out) {
            if (seen == v)
                return;
        }
        out.push_back(std::move(v));
        break;
      }
    }
}

} // namespace

bool
evalCond(const Cond &c, const RunResult &r,
         const std::map<std::string, Addr> &addrOf)
{
    switch (c.kind) {
      case Cond::Kind::And:
        for (const Cond &k : c.kids) {
            if (!evalCond(k, r, addrOf))
                return false;
        }
        return true;
      case Cond::Kind::Or:
        for (const Cond &k : c.kids) {
            if (evalCond(k, r, addrOf))
                return true;
        }
        return false;
      case Cond::Kind::Not:
        return !evalCond(c.kids.at(0), r, addrOf);
      case Cond::Kind::RegTerm: {
        Word v = regValue(r, c.proc, c.reg);
        return c.op == CmpOp::Eq ? v == c.value : v != c.value;
      }
      case Cond::Kind::MemTerm: {
        Word v = memValue(r, addrOf, c.loc);
        return c.op == CmpOp::Eq ? v == c.value : v != c.value;
      }
    }
    return false;
}

bool
ObservedVar::operator<(const ObservedVar &o) const
{
    return std::tie(isReg, proc, reg, loc) <
           std::tie(o.isReg, o.proc, o.reg, o.loc);
}

bool
ObservedVar::operator==(const ObservedVar &o) const
{
    return isReg == o.isReg && proc == o.proc && reg == o.reg &&
           loc == o.loc;
}

std::string
ObservedVar::toString() const
{
    if (isReg)
        return "P" + std::to_string(proc) + ":r" + std::to_string(reg);
    return loc;
}

std::vector<ObservedVar>
observedVars(const Cond &c)
{
    std::vector<ObservedVar> out;
    collectVars(c, out);
    return out;
}

std::string
outcomeKey(const std::vector<ObservedVar> &vars, const RunResult &r,
           const std::map<std::string, Addr> &addrOf)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < vars.size(); ++i) {
        if (i)
            oss << ' ';
        const ObservedVar &v = vars[i];
        Word val = v.isReg ? regValue(r, v.proc, v.reg)
                           : memValue(r, addrOf, v.loc);
        oss << v.toString() << '=' << val;
    }
    return oss.str();
}

} // namespace litmus_dsl
} // namespace wo
