/**
 * @file
 * Expectation evaluation: does a concrete RunResult satisfy a litmus
 * clause's condition, and what "outcome" did a run land on?
 *
 * The outcome key of a run is the tuple of values of every term the
 * clause mentions (registers and final memory locations), rendered
 * "P0:r0=0 P1:r0=1" — the unit the batch runner histograms, mirroring
 * herd's per-final-state counts.
 */

#ifndef WO_LITMUS_EXPECT_HH
#define WO_LITMUS_EXPECT_HH

#include <map>
#include <string>
#include <vector>

#include "core/trace.hh"
#include "litmus/ast.hh"

namespace wo {
namespace litmus_dsl {

/** Truth value of @p c against one run's observable result. Register
 * terms index RunResult::registers; memory terms read finalMemory via
 * @p addrOf (absent addresses read as @p initials, default 0). */
bool evalCond(const Cond &c, const RunResult &r,
              const std::map<std::string, Addr> &addrOf);

/** One observed variable of a clause (a register or a location). */
struct ObservedVar
{
    bool isReg = true;
    int proc = -1;
    int reg = -1;
    std::string loc;

    bool operator<(const ObservedVar &o) const;
    bool operator==(const ObservedVar &o) const;

    std::string toString() const; ///< "P0:r1" or "x"
};

/** The distinct variables mentioned by @p c, in first-mention order. */
std::vector<ObservedVar> observedVars(const Cond &c);

/** Render @p r projected onto @p vars: "P0:r0=0 P1:r0=1 x=2". */
std::string outcomeKey(const std::vector<ObservedVar> &vars,
                       const RunResult &r,
                       const std::map<std::string, Addr> &addrOf);

} // namespace litmus_dsl
} // namespace wo

#endif // WO_LITMUS_EXPECT_HH
