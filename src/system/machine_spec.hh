/**
 * @file
 * Named machine registry: the single place where the simulated machines
 * of this repo are defined.
 *
 * Every tool, bench and example used to assemble its `SystemConfig`s by
 * hand, which duplicated the paper's hardware configurations in a dozen
 * places and let them drift. A MachineSpec is a named, documented recipe
 * for one machine; `config()` produces the corresponding SystemConfig.
 * Call sites obtain a base config from the registry and then apply
 * site-specific tuning (tick limits, cache geometry, sweep knobs) — they
 * never assemble a SystemConfig from scratch.
 *
 * Registered machines:
 *   bus        shared-bus, cache-coherent; write buffers under Relaxed
 *   bus-cap    shared-bus machine with tiny bounded L1s (evictions)
 *   bus-u      cache-less shared bus (Figure 1 case 1)
 *   bus-slow   contended shared bus: 3x latency, 4x occupancy
 *   bus-mesi   shared-bus machine under the MESI protocol
 *   bus-moesi  shared-bus machine under the MOESI protocol
 *   bus-mesif  shared-bus machine under the MESIF protocol
 *   bus-l2     shared-bus machine with private L2s (MSI)
 *   net        jittered-network, cache-coherent, warm caches
 *   net-cold   jittered-network, cache-coherent, cold caches
 *   net-u      cache-less banked-memory network (Figure 1 case 2)
 *   net-banked network machine with banked directories and memories
 *   net-mesi   network machine under the MESI protocol
 *   net-moesi  network machine under the MOESI protocol
 *   net-mesif  network machine under the MESIF protocol
 *   net-l2     network machine with private L2s (MESI)
 *   net-l2-moesi network machine with private L2s (MOESI)
 *
 * parseMachineList accepts glob-style patterns per element: `bus-*`
 * expands to every machine whose name matches, in registry order.
 */

#ifndef WO_SYSTEM_MACHINE_SPEC_HH
#define WO_SYSTEM_MACHINE_SPEC_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "system/system.hh"

namespace wo {

/** A named, documented recipe for one simulated machine. */
struct MachineSpec
{
    std::string name;
    std::string summary; ///< one-line description (--list-machines)

    InterconnectKind interconnect = InterconnectKind::Network;
    bool cached = true;

    /** Coherence protocol of the cache hierarchy. */
    ProtocolKind protocol = ProtocolKind::Msi;

    /** Cache hierarchy depth (1 = L1 only, 2 = private L1+L2). */
    int cacheLevels = 1;

    /** L1 sets; 0 models an unbounded cache (no capacity evictions). */
    int cacheSets = 0;

    /** L1 associativity (used when cacheSets > 0). */
    int cacheWays = 0;

    /** Start with warm caches (steady-state sharing). */
    bool warmCaches = false;

    /** Enable write buffers when the policy is Relaxed (the classic
     * Figure 1 reordering source on the bus). */
    bool writeBufferOnRelaxed = false;

    Tick netBase = 6;   ///< network minimum latency
    Tick netJitter = 8; ///< network jitter bound (ignored on the bus)
    Tick busLatency = 4;
    Tick busOccupancy = 1;

    int numMemModules = 2; ///< memory banks (cache-less systems)
    int numDirs = 1;       ///< directory banks (cache-coherent systems)

    /**
     * Produce this machine's SystemConfig for @p policy.
     *
     * @p netSeed seeds the network jitter stream (ignored on the bus);
     * the default matches a default-constructed GeneralNetwork::Config.
     */
    SystemConfig config(PolicyKind policy = PolicyKind::Def2Drf0,
                        std::uint64_t netSeed = 1) const;
};

/** All registered machines, in listing order. */
const std::vector<MachineSpec> &machineRegistry();

/** Look up a machine by name; nullptr if unknown. */
const MachineSpec *findMachine(const std::string &name);

/** Look up a machine by name; throws std::runtime_error (naming the
 * known machines) if unknown. */
const MachineSpec &machineOrThrow(const std::string &name);

/**
 * Parse a comma-separated machine-name list (the --machines=<list>
 * argument). Each element may be a glob-style pattern (`*` matches any
 * run, `?` one character): `bus-*,net-l2` expands against the registry
 * in listing order, deduplicating. Throws std::runtime_error on an
 * empty list, an unknown name or a pattern matching nothing.
 */
std::vector<const MachineSpec *>
parseMachineList(const std::string &csv);

/** Print the registry as an aligned table: name, interconnect, cached,
 * protocol, levels, jitter, description (the --list-machines output). */
void printMachineList(std::ostream &os);

} // namespace wo

#endif // WO_SYSTEM_MACHINE_SPEC_HH
