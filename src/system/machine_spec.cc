#include "system/machine_spec.hh"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wo {

SystemConfig
MachineSpec::config(PolicyKind policy, std::uint64_t netSeed) const
{
    SystemConfig cfg;
    cfg.policy = policy;
    cfg.cached = cached;
    cfg.interconnect = interconnect;
    cfg.protocol = protocol;
    cfg.cacheLevels = cacheLevels;
    cfg.writeBuffer =
        policy == PolicyKind::Relaxed && writeBufferOnRelaxed;
    cfg.warmCaches = warmCaches;
    cfg.numMemModules = numMemModules;
    cfg.numDirs = numDirs;
    if (cacheSets > 0) {
        cfg.cache.numSets = cacheSets;
        if (cacheWays > 0)
            cfg.cache.ways = cacheWays;
    }
    cfg.bus.latency = busLatency;
    cfg.bus.occupancy = busOccupancy;
    cfg.net.base = netBase;
    cfg.net.jitter = netJitter;
    cfg.net.seed = netSeed;
    return cfg;
}

const std::vector<MachineSpec> &
machineRegistry()
{
    static const std::vector<MachineSpec> registry = [] {
        std::vector<MachineSpec> r;

        MachineSpec bus;
        bus.name = "bus";
        bus.summary = "shared-bus cache-coherent machine; write buffers "
                      "under Relaxed";
        bus.interconnect = InterconnectKind::Bus;
        bus.writeBufferOnRelaxed = true;
        r.push_back(bus);

        // Capacity-bounded variant: the tiny L1 forces real evictions
        // (Evict protocol transitions), which the unbounded machines
        // never exercise.
        MachineSpec bus_cap = bus;
        bus_cap.name = "bus-cap";
        bus_cap.summary = "shared-bus machine with tiny bounded L1s "
                          "(capacity evictions)";
        bus_cap.cacheSets = 1;
        bus_cap.cacheWays = 2;
        r.push_back(bus_cap);

        MachineSpec bus_u;
        bus_u.name = "bus-u";
        bus_u.summary =
            "cache-less shared-bus machine (Figure 1 case 1)";
        bus_u.interconnect = InterconnectKind::Bus;
        bus_u.cached = false;
        bus_u.writeBufferOnRelaxed = true;
        r.push_back(bus_u);

        MachineSpec bus_slow;
        bus_slow.name = "bus-slow";
        bus_slow.summary =
            "contended shared bus: 3x latency, 4x occupancy";
        bus_slow.interconnect = InterconnectKind::Bus;
        bus_slow.writeBufferOnRelaxed = true;
        bus_slow.busLatency = 12;
        bus_slow.busOccupancy = 4;
        r.push_back(bus_slow);

        MachineSpec net;
        net.name = "net";
        net.summary = "jittered-network cache-coherent machine, warm "
                      "caches";
        net.warmCaches = true;
        r.push_back(net);

        MachineSpec net_cold;
        net_cold.name = "net-cold";
        net_cold.summary = "jittered-network cache-coherent machine, "
                           "cold caches (bench default)";
        r.push_back(net_cold);

        MachineSpec net_u;
        net_u.name = "net-u";
        net_u.summary = "cache-less banked-memory network machine "
                        "(Figure 1 case 2)";
        net_u.cached = false;
        net_u.netJitter = 30;
        r.push_back(net_u);

        MachineSpec net_banked;
        net_banked.name = "net-banked";
        net_banked.summary = "network machine with banked directories "
                             "and memories (addr-interleaved)";
        net_banked.numDirs = 2;
        net_banked.numMemModules = 4;
        r.push_back(net_banked);

        // Protocol variants: identical topologies to `bus` / `net-cold`
        // but running the richer invalidation protocols.
        auto protoVariant = [](const MachineSpec &base, std::string name,
                               ProtocolKind proto, const char *pname) {
            MachineSpec m = base;
            m.name = std::move(name);
            m.protocol = proto;
            m.summary = std::string(pname) + " protocol variant of '" +
                        base.name + "'";
            return m;
        };
        r.push_back(protoVariant(bus, "bus-mesi", ProtocolKind::Mesi,
                                 "MESI"));
        r.push_back(protoVariant(bus, "bus-moesi", ProtocolKind::Moesi,
                                 "MOESI"));
        r.push_back(protoVariant(bus, "bus-mesif", ProtocolKind::Mesif,
                                 "MESIF"));
        r.push_back(protoVariant(net_cold, "net-mesi", ProtocolKind::Mesi,
                                 "MESI"));
        r.push_back(protoVariant(net_cold, "net-moesi",
                                 ProtocolKind::Moesi, "MOESI"));
        r.push_back(protoVariant(net_cold, "net-mesif",
                                 ProtocolKind::Mesif, "MESIF"));

        MachineSpec bus_l2 = bus;
        bus_l2.name = "bus-l2";
        bus_l2.summary = "shared-bus machine with private L2s (MSI)";
        bus_l2.cacheLevels = 2;
        r.push_back(bus_l2);

        MachineSpec net_l2 = net_cold;
        net_l2.name = "net-l2";
        net_l2.summary = "network machine with private L2s (MESI)";
        net_l2.protocol = ProtocolKind::Mesi;
        net_l2.cacheLevels = 2;
        r.push_back(net_l2);

        MachineSpec net_l2_moesi = net_cold;
        net_l2_moesi.name = "net-l2-moesi";
        net_l2_moesi.summary =
            "network machine with private L2s (MOESI)";
        net_l2_moesi.protocol = ProtocolKind::Moesi;
        net_l2_moesi.cacheLevels = 2;
        r.push_back(net_l2_moesi);

        return r;
    }();
    return registry;
}

const MachineSpec *
findMachine(const std::string &name)
{
    for (const MachineSpec &m : machineRegistry()) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

const MachineSpec &
machineOrThrow(const std::string &name)
{
    if (const MachineSpec *m = findMachine(name))
        return *m;
    std::string known;
    for (const MachineSpec &m : machineRegistry())
        known += (known.empty() ? "" : ", ") + m.name;
    throw std::runtime_error("unknown machine '" + name +
                             "' (known: " + known + ")");
}

/** Glob match: `*` any run, `?` one character, else literal. */
static bool
globMatch(const std::string &pat, const std::string &s, std::size_t pi = 0,
          std::size_t si = 0)
{
    while (pi < pat.size()) {
        if (pat[pi] == '*') {
            for (std::size_t k = si; k <= s.size(); ++k) {
                if (globMatch(pat, s, pi + 1, k))
                    return true;
            }
            return false;
        }
        if (si >= s.size())
            return false;
        if (pat[pi] != '?' && pat[pi] != s[si])
            return false;
        ++pi;
        ++si;
    }
    return si == s.size();
}

std::vector<const MachineSpec *>
parseMachineList(const std::string &csv)
{
    std::vector<const MachineSpec *> out;
    auto addUnique = [&out](const MachineSpec *m) {
        for (const MachineSpec *have : out) {
            if (have == m)
                return;
        }
        out.push_back(m);
    };
    std::istringstream in(csv);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item.empty())
            continue;
        if (item.find('*') == std::string::npos &&
            item.find('?') == std::string::npos) {
            addUnique(&machineOrThrow(item));
            continue;
        }
        bool any = false;
        for (const MachineSpec &m : machineRegistry()) {
            if (globMatch(item, m.name)) {
                addUnique(&m);
                any = true;
            }
        }
        if (!any) {
            throw std::runtime_error("machine pattern '" + item +
                                     "' matches no registered machine");
        }
    }
    if (out.empty())
        throw std::runtime_error("empty machine list");
    return out;
}

void
printMachineList(std::ostream &os)
{
    os << std::left << std::setw(14) << "machine" << std::setw(9)
       << "network" << std::setw(8) << "cached" << std::setw(7)
       << "proto" << std::setw(7) << "levels" << std::setw(8)
       << "jitter" << "description\n";
    for (const MachineSpec &m : machineRegistry()) {
        bool is_net = m.interconnect == InterconnectKind::Network;
        os << std::left << std::setw(14) << m.name << std::setw(9)
           << (is_net ? "net" : "bus") << std::setw(8)
           << (m.cached ? "yes" : "no") << std::setw(7)
           << (m.cached ? toString(m.protocol) : "-") << std::setw(7)
           << (m.cached ? std::to_string(m.cacheLevels) : std::string("-"))
           << std::setw(8)
           << (is_net ? std::to_string(m.netJitter) : std::string("-"))
           << m.summary << "\n";
    }
}

} // namespace wo
