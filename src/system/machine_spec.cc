#include "system/machine_spec.hh"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wo {

SystemConfig
MachineSpec::config(PolicyKind policy, std::uint64_t netSeed) const
{
    SystemConfig cfg;
    cfg.policy = policy;
    cfg.cached = cached;
    cfg.interconnect = interconnect;
    cfg.writeBuffer =
        policy == PolicyKind::Relaxed && writeBufferOnRelaxed;
    cfg.warmCaches = warmCaches;
    cfg.numMemModules = numMemModules;
    cfg.numDirs = numDirs;
    cfg.bus.latency = busLatency;
    cfg.bus.occupancy = busOccupancy;
    cfg.net.base = netBase;
    cfg.net.jitter = netJitter;
    cfg.net.seed = netSeed;
    return cfg;
}

const std::vector<MachineSpec> &
machineRegistry()
{
    static const std::vector<MachineSpec> registry = [] {
        std::vector<MachineSpec> r;

        MachineSpec bus;
        bus.name = "bus";
        bus.summary = "shared-bus cache-coherent machine; write buffers "
                      "under Relaxed";
        bus.interconnect = InterconnectKind::Bus;
        bus.writeBufferOnRelaxed = true;
        r.push_back(bus);

        MachineSpec bus_u;
        bus_u.name = "bus-u";
        bus_u.summary =
            "cache-less shared-bus machine (Figure 1 case 1)";
        bus_u.interconnect = InterconnectKind::Bus;
        bus_u.cached = false;
        bus_u.writeBufferOnRelaxed = true;
        r.push_back(bus_u);

        MachineSpec bus_slow;
        bus_slow.name = "bus-slow";
        bus_slow.summary =
            "contended shared bus: 3x latency, 4x occupancy";
        bus_slow.interconnect = InterconnectKind::Bus;
        bus_slow.writeBufferOnRelaxed = true;
        bus_slow.busLatency = 12;
        bus_slow.busOccupancy = 4;
        r.push_back(bus_slow);

        MachineSpec net;
        net.name = "net";
        net.summary = "jittered-network cache-coherent machine, warm "
                      "caches";
        net.warmCaches = true;
        r.push_back(net);

        MachineSpec net_cold;
        net_cold.name = "net-cold";
        net_cold.summary = "jittered-network cache-coherent machine, "
                           "cold caches (bench default)";
        r.push_back(net_cold);

        MachineSpec net_u;
        net_u.name = "net-u";
        net_u.summary = "cache-less banked-memory network machine "
                        "(Figure 1 case 2)";
        net_u.cached = false;
        net_u.netJitter = 30;
        r.push_back(net_u);

        MachineSpec net_banked;
        net_banked.name = "net-banked";
        net_banked.summary = "network machine with banked directories "
                             "and memories (addr-interleaved)";
        net_banked.numDirs = 2;
        net_banked.numMemModules = 4;
        r.push_back(net_banked);

        return r;
    }();
    return registry;
}

const MachineSpec *
findMachine(const std::string &name)
{
    for (const MachineSpec &m : machineRegistry()) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

const MachineSpec &
machineOrThrow(const std::string &name)
{
    if (const MachineSpec *m = findMachine(name))
        return *m;
    std::string known;
    for (const MachineSpec &m : machineRegistry())
        known += (known.empty() ? "" : ", ") + m.name;
    throw std::runtime_error("unknown machine '" + name +
                             "' (known: " + known + ")");
}

std::vector<const MachineSpec *>
parseMachineList(const std::string &csv)
{
    std::vector<const MachineSpec *> out;
    std::istringstream in(csv);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item.empty())
            continue;
        out.push_back(&machineOrThrow(item));
    }
    if (out.empty())
        throw std::runtime_error("empty machine list");
    return out;
}

void
printMachineList(std::ostream &os)
{
    os << std::left << std::setw(12) << "machine" << std::setw(9)
       << "network" << std::setw(8) << "cached" << std::setw(8)
       << "jitter" << "description\n";
    for (const MachineSpec &m : machineRegistry()) {
        bool is_net = m.interconnect == InterconnectKind::Network;
        os << std::left << std::setw(12) << m.name << std::setw(9)
           << (is_net ? "net" : "bus") << std::setw(8)
           << (m.cached ? "yes" : "no") << std::setw(8)
           << (is_net ? std::to_string(m.netJitter) : std::string("-"))
           << m.summary << "\n";
    }
}

} // namespace wo
