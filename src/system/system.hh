/**
 * @file
 * Whole-system assembly: processors x interconnect x memory organization
 * x consistency policy.
 *
 * The four hardware configurations of Figure 1 are all expressible:
 * {bus, general network} x {cache-less, cache-coherent}, each under any
 * of the consistency policies (where legal: the Definition 2
 * implementations need caches for their reserve bits).
 */

#ifndef WO_SYSTEM_SYSTEM_HH
#define WO_SYSTEM_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coherence/cache.hh"
#include "coherence/directory.hh"
#include "coherence/mid_cache.hh"
#include "consistency/policy.hh"
#include "core/trace.hh"
#include "cpu/processor.hh"
#include "cpu/program.hh"
#include "mem/interconnect.hh"
#include "mem/memory_module.hh"
#include "mem/uncached_port.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace wo {

class CoverageMap;
class TraceSink;

/** Which interconnect family to build. */
enum class InterconnectKind { Bus, Network };

/** Full system configuration. */
struct SystemConfig
{
    bool cached = true;
    InterconnectKind interconnect = InterconnectKind::Network;
    PolicyKind policy = PolicyKind::Def2Drf0;

    /** Coherence protocol run by every cache and directory (cached
     * systems; copied into the cache/dir/L2 configs at build time). */
    ProtocolKind protocol = ProtocolKind::Msi;

    /** Cache hierarchy depth: 1 = private L1 per processor (the seed
     * topology), 2 = private L1 + private L2 per processor, with the
     * directory behind the L2s. */
    int cacheLevels = 1;

    /** Enable processor write buffers (Relaxed policy only). */
    bool writeBuffer = false;

    int numMemModules = 2; ///< memory banks (cache-less systems)
    int numDirs = 1;       ///< directory banks (cache-coherent systems)

    Bus::Config bus;
    GeneralNetwork::Config net;
    MemoryModule::Config mem;
    DirectoryConfig dir;
    CacheConfig cache;
    MidCacheConfig l2; ///< per-processor L2 (cacheLevels == 2)
    ProcessorConfig proc;

    /** Give up (livelock guard) after this many ticks. */
    Tick maxTicks = 5000000;

    /** Pre-load every touched location Shared into every cache (a warm
     * steady state; directory sharer lists are set to match). */
    bool warmCaches = false;

    /** Structured trace sink wired into every component (non-owning;
     * must outlive the System). Null = tracing disabled: no events, no
     * extra stats, byte-identical reports. */
    TraceSink *traceSink = nullptr;

    /**
     * Campaign coverage counters (non-owning; must outlive the run).
     * runStreaming installs it thread-locally for the run's duration,
     * so instrumented sites (protocol lookups, stall families, latency
     * buckets) record into it. Null = coverage disabled: one
     * thread-local load and branch per site, nothing recorded.
     * Recording is passive (never touches stats or simulator state),
     * so reports stay byte-identical either way. Like traceSink, the
     * pointer is exempt from structural compatibility: the map is the
     * campaign's, survives System::reset between pooled jobs, and owes
     * the System nothing when the pool drops it.
     */
    CoverageMap *coverage = nullptr;
};

/** A complete simulated multiprocessor running one workload. */
class System
{
  public:
    /** Build the system; throws std::invalid_argument on illegal
     * configuration combinations. */
    System(const MultiProgram &program, const SystemConfig &cfg);

    /**
     * Run to completion.
     *
     * @return true if every processor halted, every access completed and
     *         the protocol drained before the tick limit.
     */
    bool run();

    /**
     * Run to completion in tick-bounded chunks, invoking @p onChunk
     * between chunks (and once after the final one). The callback may
     * inspect the event queue's current tick and retire the finalized
     * trace prefix through mutableTrace() — the trace-replay pipeline's
     * hook for keeping resident trace memory O(window) during a run.
     * With @p chunkTicks == 0 this is exactly run().
     *
     * @return true if every processor halted, every access completed and
     *         the protocol drained before the tick limit.
     */
    bool runStreaming(Tick chunkTicks,
                      const std::function<void(System &)> &onChunk);

    /** Mutable trace access for windowed retention (popFront) by the
     * streaming-run callback. Retiring accesses that are not yet
     * globally performed is a caller bug: the simulator still patches
     * their commit/gp ticks in place. */
    ExecutionTrace &mutableTrace() { return trace_; }

    /**
     * Restore construction-time state for reuse under @p cfg, which must
     * be structurally compatible with the built topology (every field
     * equal except net.seed, maxTicks and traceSink — the three that can
     * vary between jobs of one campaign cell). Throws
     * std::invalid_argument otherwise. All component state, statistics
     * and the trace are cleared; pooled event slabs are retained. A
     * program must be (re)installed with loadProgram() before run().
     */
    void reset(const SystemConfig &cfg);

    /** Reset and reload the current program and config: the next run()
     * replays the same job bit-identically. */
    void reset();

    /**
     * Install @p program as the next workload: initial memory values are
     * poked exactly as construction does (including warm-cache
     * pre-loading) and every processor is rebound and reset. The program
     * must have the same processor count as the one the system was built
     * with; throws std::invalid_argument otherwise.
     */
    void loadProgram(const MultiProgram &program);

    /** True if reset(cfg) + loadProgram(program) would succeed — the
     * pool's can-I-reuse-this-instance test. */
    bool compatibleWith(const MultiProgram &program,
                        const SystemConfig &cfg) const;

    /** Rewire the structured trace sink on every component (nullptr
     * detaches); reset(cfg) applies cfg.traceSink through this. */
    void setTraceSink(TraceSink *sink);

    /** Point the next run at @p cov (nullptr detaches); reset(cfg)
     * applies cfg.coverage through this. A pooled System outliving a
     * per-job CoverageMap must be detached before the map dies. */
    void setCoverage(CoverageMap *cov) { cfg_.coverage = cov; }

    /** Observable outcome (registers padded to the workload's register
     * count so results compare against idealized outcomes). */
    RunResult result() const;

    /** The recorded execution trace. */
    const ExecutionTrace &trace() const { return trace_; }

    /** Simulation statistics. */
    const StatSet &stats() const { return stats_; }

    /** Tick at which the last processor halted. */
    Tick finishTick() const;

    /** Access to one processor (stall counters, registers). */
    Processor &processor(ProcId p) { return *procs_.at(p); }
    const Processor &processor(ProcId p) const { return *procs_.at(p); }

    /** The cache of processor @p p (nullptr in cache-less systems). */
    Cache *cache(ProcId p);

    /** The private L2 of processor @p p (nullptr unless cacheLevels
     * is 2). */
    MidCache *midCache(ProcId p);

    /** The event queue (advanced diagnostics / tests). */
    EventQueue &eventQueue() { return eq_; }

    /** The interconnect (message-latency histogram access). */
    Interconnect &interconnect() { return *net_; }
    const Interconnect &interconnect() const { return *net_; }

    /** Human-readable configuration summary. */
    std::string description() const;

    /**
     * Audit end-of-run coherence invariants (cache-coherent systems):
     *  - at most one exclusive copy of each line, and the directory's
     *    owner matches;
     *  - every cached shared copy is listed in the directory's sharer
     *    set (the set may be a stale superset after silent drops);
     *  - shared copies hold the directory's memory value;
     *  - no directory line is still busy.
     *
     * @return human-readable violations; empty means coherent.
     */
    std::vector<std::string> auditCoherence() const;

  private:
    /** Every cfg field equal except net.seed, maxTicks, traceSink. */
    bool structurallyCompatible(const SystemConfig &cfg) const;

    MultiProgram program_;
    SystemConfig cfg_;
    /** False between reset(cfg) and the next loadProgram(). */
    bool loaded_ = true;
    EventQueue eq_;
    StatSet stats_;
    ExecutionTrace trace_;
    std::unique_ptr<Interconnect> net_;
    std::unique_ptr<ConsistencyPolicy> policy_;
    std::vector<std::unique_ptr<Cache>> caches_;
    std::vector<std::unique_ptr<MidCache>> mids_;
    std::vector<std::unique_ptr<UncachedPort>> uncached_ports_;
    std::vector<std::unique_ptr<Directory>> dirs_;
    std::vector<std::unique_ptr<MemoryModule>> mems_;
    std::vector<std::unique_ptr<Processor>> procs_;
};

} // namespace wo

#endif // WO_SYSTEM_SYSTEM_HH
