#include "system/system.hh"

#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/coverage.hh"

namespace wo {

System::System(const MultiProgram &program, const SystemConfig &cfg)
    : program_(program), cfg_(cfg)
{
    policy_ = makePolicy(cfg_.policy);
    if (policy_->requiresCache() && !cfg_.cached) {
        throw std::invalid_argument(
            policy_->name() +
            " needs a cache-coherent system (reserve bits live in caches)");
    }
    if (cfg_.writeBuffer && !policy_->allowWriteBuffer()) {
        throw std::invalid_argument(
            "write buffers are illegal under policy " + policy_->name());
    }
    if (cfg_.numDirs < 1 || cfg_.numMemModules < 1)
        throw std::invalid_argument("need at least one memory/dir bank");

    int nprocs = program_.numProcs();
    if (nprocs < 1)
        throw std::invalid_argument("workload has no processors");

    if (cfg_.interconnect == InterconnectKind::Bus) {
        net_ = std::make_unique<Bus>(eq_, stats_, cfg_.bus);
    } else {
        net_ = std::make_unique<GeneralNetwork>(eq_, stats_, cfg_.net);
    }

    if (cfg_.cacheLevels < 1 || cfg_.cacheLevels > 2)
        throw std::invalid_argument("cacheLevels must be 1 or 2");
    if (cfg_.cacheLevels == 2 && !cfg_.cached)
        throw std::invalid_argument("cacheLevels > 1 needs caches");

    if (cfg_.cached) {
        CacheConfig ccfg = cfg_.cache;
        ccfg.protocol = cfg_.protocol;
        ccfg.syncReadsAsWrites = policy_->syncReadsAsWrites();
        ccfg.useReserveBits = policy_->useReserveBits();
        DirectoryConfig dcfg = cfg_.dir;
        dcfg.protocol = cfg_.protocol;
        // Node layout: L1s at [0, n); with an L2 level, L2s at [n, 2n)
        // and directories behind them; otherwise directories at [n, ...).
        NodeId dir_base = cfg_.cacheLevels == 2 ? 2 * nprocs : nprocs;
        for (int d = 0; d < cfg_.numDirs; ++d) {
            dirs_.push_back(std::make_unique<Directory>(
                eq_, *net_, stats_, dir_base + d, dcfg,
                "dir" + std::to_string(d)));
        }
        if (cfg_.cacheLevels == 2) {
            MidCacheConfig mcfg = cfg_.l2;
            mcfg.protocol = cfg_.protocol;
            for (ProcId p = 0; p < nprocs; ++p) {
                mids_.push_back(std::make_unique<MidCache>(
                    eq_, *net_, stats_, nprocs + p, p, dir_base,
                    cfg_.numDirs, mcfg, "l2cache" + std::to_string(p)));
            }
        }
        for (ProcId p = 0; p < nprocs; ++p) {
            // With an L2 level each L1 talks only to its private L2,
            // which presents a directory-shaped outer interface.
            NodeId l1_dir_base =
                cfg_.cacheLevels == 2 ? nprocs + p : nprocs;
            int l1_num_dirs = cfg_.cacheLevels == 2 ? 1 : cfg_.numDirs;
            caches_.push_back(std::make_unique<Cache>(
                eq_, *net_, stats_, p, l1_dir_base, l1_num_dirs, ccfg,
                "cache" + std::to_string(p)));
        }
    } else {
        for (int m = 0; m < cfg_.numMemModules; ++m) {
            mems_.push_back(std::make_unique<MemoryModule>(
                eq_, *net_, stats_, nprocs + m, cfg_.mem));
        }
        for (ProcId p = 0; p < nprocs; ++p) {
            uncached_ports_.push_back(std::make_unique<UncachedPort>(
                eq_, *net_, stats_, p, nprocs, cfg_.numMemModules,
                "port" + std::to_string(p)));
        }
    }

    ProcessorConfig pcfg = cfg_.proc;
    pcfg.useWriteBuffer = cfg_.writeBuffer;
    for (ProcId p = 0; p < nprocs; ++p) {
        MemPort &port = cfg_.cached
                            ? static_cast<MemPort &>(*caches_[p])
                            : static_cast<MemPort &>(*uncached_ports_[p]);
        procs_.push_back(std::make_unique<Processor>(
            eq_, stats_, p, program_.program(p), port, *policy_, &trace_,
            pcfg));
    }

    // Shares the between-runs install path: initial-value pokes,
    // warm-cache pre-loading and processor (re)binding live in one
    // place, so a reset-reuse run starts from byte-identical state.
    loadProgram(program_);
    setTraceSink(cfg_.traceSink);
}

bool
System::structurallyCompatible(const SystemConfig &cfg) const
{
    return cfg.cached == cfg_.cached &&
           cfg.interconnect == cfg_.interconnect &&
           cfg.policy == cfg_.policy &&
           cfg.protocol == cfg_.protocol &&
           cfg.cacheLevels == cfg_.cacheLevels &&
           cfg.l2.numSets == cfg_.l2.numSets &&
           cfg.l2.ways == cfg_.l2.ways &&
           cfg.l2.latency == cfg_.l2.latency &&
           cfg.writeBuffer == cfg_.writeBuffer &&
           cfg.numMemModules == cfg_.numMemModules &&
           cfg.numDirs == cfg_.numDirs &&
           cfg.bus.latency == cfg_.bus.latency &&
           cfg.bus.occupancy == cfg_.bus.occupancy &&
           cfg.net.base == cfg_.net.base &&
           cfg.net.jitter == cfg_.net.jitter &&
           cfg.mem.serviceLatency == cfg_.mem.serviceLatency &&
           cfg.dir.latency == cfg_.dir.latency &&
           cfg.cache.numSets == cfg_.cache.numSets &&
           cfg.cache.ways == cfg_.cache.ways &&
           cfg.cache.hitLatency == cfg_.cache.hitLatency &&
           cfg.cache.invApplyDelay == cfg_.cache.invApplyDelay &&
           cfg.cache.syncReadsAsWrites == cfg_.cache.syncReadsAsWrites &&
           cfg.cache.useReserveBits == cfg_.cache.useReserveBits &&
           cfg.cache.maxMissesWhileReserved ==
               cfg_.cache.maxMissesWhileReserved &&
           cfg.cache.epochReserveClearing ==
               cfg_.cache.epochReserveClearing &&
           cfg.proc.useWriteBuffer == cfg_.proc.useWriteBuffer &&
           cfg.proc.wbDrainDelay == cfg_.proc.wbDrainDelay &&
           cfg.proc.maxOutstanding == cfg_.proc.maxOutstanding &&
           cfg.proc.cycle == cfg_.proc.cycle &&
           cfg.warmCaches == cfg_.warmCaches;
}

bool
System::compatibleWith(const MultiProgram &program,
                       const SystemConfig &cfg) const
{
    return program.numProcs() == static_cast<int>(procs_.size()) &&
           structurallyCompatible(cfg);
}

void
System::reset(const SystemConfig &cfg)
{
    if (!structurallyCompatible(cfg)) {
        throw std::invalid_argument(
            "System::reset: config is structurally incompatible with the "
            "built topology (only net.seed, maxTicks, traceSink and "
            "coverage may vary between runs)");
    }
    // Deliberate drain: a run that hit its livelock tick limit leaves
    // events pending, and abandoning them is exactly what reuse wants.
    eq_.reset(/*drain=*/true);
    stats_.reset();
    trace_.clear();
    net_->reset(cfg.net.seed);
    for (auto &c : caches_)
        c->reset();
    for (auto &m : mids_)
        m->reset();
    for (auto &d : dirs_)
        d->reset();
    for (auto &m : mems_)
        m->reset();
    for (auto &u : uncached_ports_)
        u->reset();
    cfg_.net.seed = cfg.net.seed;
    cfg_.maxTicks = cfg.maxTicks;
    setTraceSink(cfg.traceSink);
    setCoverage(cfg.coverage);
    loaded_ = false;
}

void
System::reset()
{
    SystemConfig cfg = cfg_;
    reset(cfg);
    loadProgram(program_);
}

void
System::loadProgram(const MultiProgram &program)
{
    if (program.numProcs() != static_cast<int>(procs_.size())) {
        throw std::invalid_argument(
            "System::loadProgram: workload has " +
            std::to_string(program.numProcs()) +
            " processors but the system was built with " +
            std::to_string(procs_.size()));
    }
    if (&program != &program_)
        program_ = program;

    int nprocs = static_cast<int>(procs_.size());
    std::vector<Addr> addrs = program_.touchedAddrs();
    for (Addr a : addrs)
        trace_.setInitial(a, program_.initialValue(a));

    if (cfg_.cached) {
        for (Addr a : addrs)
            dirs_[a % cfg_.numDirs]->poke(a, program_.initialValue(a));
        if (cfg_.warmCaches) {
            // The directory's sharers are the nodes it talks to: the
            // L1s directly, or the L2s when a mid level is present.
            std::set<NodeId> all;
            for (ProcId p = 0; p < nprocs; ++p)
                all.insert(cfg_.cacheLevels == 2 ? nprocs + p : p);
            for (Addr a : addrs) {
                Word v = program_.initialValue(a);
                for (ProcId p = 0; p < nprocs; ++p) {
                    caches_[p]->pokeLine(a, LineState::Shared, v);
                    if (cfg_.cacheLevels == 2)
                        mids_[p]->pokeLine(a, LineState::Shared, v,
                                           /*inner_shared=*/true);
                }
                dirs_[a % cfg_.numDirs]->pokeShared(a, all);
            }
        }
    } else {
        for (Addr a : addrs)
            mems_[a % cfg_.numMemModules]->poke(a, program_.initialValue(a));
    }

    for (ProcId p = 0; p < nprocs; ++p)
        procs_[p]->reset(program_.program(p));
    loaded_ = true;
}

void
System::setTraceSink(TraceSink *sink)
{
    cfg_.traceSink = sink;
    net_->setTraceSink(sink);
    for (auto &c : caches_)
        c->setTraceSink(sink);
    for (auto &m : mids_)
        m->setTraceSink(sink);
    for (auto &d : dirs_)
        d->setTraceSink(sink);
    for (auto &m : mems_)
        m->setTraceSink(sink);
    for (auto &u : uncached_ports_)
        u->setTraceSink(sink);
    for (auto &p : procs_)
        p->setTraceSink(sink);
}

bool
System::run()
{
    return runStreaming(0, nullptr);
}

bool
System::runStreaming(Tick chunkTicks,
                     const std::function<void(System &)> &onChunk)
{
    if (!loaded_)
        throw std::logic_error(
            "System::run: no program loaded since reset (call "
            "loadProgram first)");
    // Everything this run exercises — protocol transitions, stall
    // reasons, latency buckets — lands in the configured CoverageMap;
    // the scope restores the previous thread-local map on exit.
    CoverageScope cov_scope(cfg_.coverage);
    for (auto &p : procs_)
        p->start();
    bool drained;
    if (chunkTicks == 0) {
        drained = eq_.run(cfg_.maxTicks);
    } else {
        // eq_.run(stop) returns false with the queue intact once the
        // next event lies beyond `stop` — exactly a chunk boundary.
        Tick stop = chunkTicks;
        while (true) {
            drained = eq_.run(std::min(stop, cfg_.maxTicks));
            if (drained || stop >= cfg_.maxTicks)
                break;
            if (onChunk)
                onChunk(*this);
            stop += chunkTicks;
        }
    }
    if (onChunk)
        onChunk(*this);
    bool ok = drained;
    for (auto &p : procs_) {
        if (!p->halted() || !p->quiescent())
            ok = false;
    }
    for (auto &d : dirs_) {
        if (!d->idle())
            ok = false;
    }
    for (auto &m : mids_) {
        if (!m->idle())
            ok = false;
    }
    for (auto &p : procs_)
        p->finalizeObs();
    stats_.set("system.finish_tick", finishTick());
    stats_.set("system.completed", ok ? 1 : 0);
    if (trace_.retired() > 0) {
        // Bounded retention was used: make it observable. Whole-trace
        // runs never emit these, keeping their reports byte-identical.
        stats_.set("system.trace_events_retired",
                   static_cast<std::uint64_t>(trace_.retired()));
        stats_.maxOf("system.window_high_water",
                     static_cast<std::uint64_t>(trace_.windowHighWater()));
    }
    return ok;
}

Tick
System::finishTick() const
{
    Tick t = 0;
    for (const auto &p : procs_) {
        if (p->haltTick() != kNoTick && p->haltTick() > t)
            t = p->haltTick();
    }
    return t;
}

Cache *
System::cache(ProcId p)
{
    return cfg_.cached ? caches_.at(p).get() : nullptr;
}

MidCache *
System::midCache(ProcId p)
{
    return cfg_.cacheLevels == 2 ? mids_.at(p).get() : nullptr;
}

RunResult
System::result() const
{
    RunResult r;
    for (Addr a : program_.touchedAddrs()) {
        Word v = 0;
        if (cfg_.cached) {
            v = dirs_[a % cfg_.numDirs]->peek(a);
            // A dirty cached copy is the authoritative value; the
            // innermost level wins (an L1's M/O copy is newer than the
            // L2 mirror behind it).
            for (const auto &m : mids_) {
                LineState st;
                Word d;
                if (m->peekLine(a, &st, &d) &&
                    (st == LineState::Modified || st == LineState::Owned))
                    v = d;
            }
            for (const auto &c : caches_) {
                LineState st;
                Word d;
                if (c->peekLine(a, &st, &d) &&
                    (st == LineState::Modified || st == LineState::Owned))
                    v = d;
            }
        } else {
            v = mems_[a % cfg_.numMemModules]->peek(a);
        }
        r.finalMemory[a] = v;
    }
    int nregs = program_.numRegisters();
    for (const auto &p : procs_) {
        std::vector<Word> regs = p->registers();
        regs.resize(nregs, 0);
        r.registers.push_back(std::move(regs));
    }
    r.allHalted = true;
    for (const auto &p : procs_) {
        if (!p->halted())
            r.allHalted = false;
    }
    return r;
}

std::vector<std::string>
System::auditCoherence() const
{
    std::vector<std::string> problems;
    if (!cfg_.cached)
        return problems;
    // E holds memory's value by construction (granted clean, never
    // written); O's dirty value was copied into memory when the read
    // recall was serviced, so at quiescence only M may differ from it.
    auto isOwnerState = [](LineState st) {
        return st == LineState::Exclusive || st == LineState::Modified ||
               st == LineState::Owned;
    };
    auto mayDiverge = [](LineState st) {
        return st == LineState::Modified;
    };
    int nprocs = static_cast<int>(procs_.size());
    for (Addr a : program_.touchedAddrs()) {
        const Directory &dir = *dirs_[a % cfg_.numDirs];
        Directory::LineAudit da = dir.audit(a);
        if (da.busy) {
            problems.push_back("dir busy on line " + std::to_string(a));
        }
        // The level the directory tracks: L1s, or L2s when present.
        int owner_copies = 0;
        NodeId owner_holder = -1;
        bool owner_owned = false;
        for (ProcId p = 0; p < nprocs; ++p) {
            LineState st;
            Word d;
            bool have = cfg_.cacheLevels == 2
                            ? mids_[p]->peekLine(a, &st, &d)
                            : caches_[p]->peekLine(a, &st, &d);
            NodeId node = cfg_.cacheLevels == 2 ? nprocs + p : p;
            std::string who = (cfg_.cacheLevels == 2 ? "l2cache" : "cache") +
                              std::to_string(p);
            if (!have)
                continue;
            if (isOwnerState(st)) {
                ++owner_copies;
                owner_holder = node;
                owner_owned = st == LineState::Owned;
            } else if (!da.sharers.count(node)) {
                problems.push_back(
                    who + " holds line " + std::to_string(a) +
                    " shared but is not in the directory sharer set");
            }
            if (!mayDiverge(st) && d != dir.peek(a)) {
                problems.push_back(
                    who + " clean copy of " + std::to_string(a) + " = " +
                    std::to_string(d) + " but directory memory = " +
                    std::to_string(dir.peek(a)));
            }
        }
        if (owner_copies > 1) {
            problems.push_back("line " + std::to_string(a) + " has " +
                               std::to_string(owner_copies) +
                               " owner-state copies");
        }
        if (owner_copies == 1 &&
            (!(owner_owned ? da.owned : da.exclusive) ||
             da.owner != owner_holder)) {
            problems.push_back(
                "line " + std::to_string(a) + " owned by node " +
                std::to_string(owner_holder) +
                " but directory disagrees");
        }
        if (owner_copies == 0 && (da.exclusive || da.owned)) {
            problems.push_back("directory says line " + std::to_string(a) +
                               " is owned but no cache holds it "
                               "exclusively");
        }
        if (da.forwarder != -1 &&
            (!da.shared || !da.sharers.count(da.forwarder))) {
            problems.push_back(
                "line " + std::to_string(a) +
                " has a forwarder that is not a tracked sharer");
        }
        if (cfg_.cacheLevels == 2) {
            // Inclusion: every L1 line lives in its L2, owner states
            // match, and clean L1 copies mirror the L2's data.
            for (ProcId p = 0; p < nprocs; ++p) {
                LineState l1st, l2st;
                Word l1d, l2d;
                if (!caches_[p]->peekLine(a, &l1st, &l1d))
                    continue;
                if (!mids_[p]->peekLine(a, &l2st, &l2d)) {
                    problems.push_back(
                        "cache" + std::to_string(p) + " holds line " +
                        std::to_string(a) +
                        " that its L2 does not (inclusion violated)");
                    continue;
                }
                if (isOwnerState(l1st) && !isOwnerState(l2st)) {
                    problems.push_back(
                        "cache" + std::to_string(p) + " owns line " +
                        std::to_string(a) + " but its L2 holds it " +
                        toString(l2st));
                }
                if (!mayDiverge(l1st) && l1d != l2d) {
                    problems.push_back(
                        "cache" + std::to_string(p) + " copy of " +
                        std::to_string(a) + " = " + std::to_string(l1d) +
                        " but its L2 holds " + std::to_string(l2d));
                }
            }
        }
    }
    return problems;
}

std::string
System::description() const
{
    std::ostringstream oss;
    oss << (cfg_.interconnect == InterconnectKind::Bus ? "bus" : "network")
        << "/" << (cfg_.cached ? "cached" : "uncached") << "/"
        << policy_->name();
    if (cfg_.writeBuffer)
        oss << "+wb";
    return oss.str();
}

} // namespace wo
