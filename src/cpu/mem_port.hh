/**
 * @file
 * The processor's view of the memory system.
 *
 * Both the coherent cache and the uncached network port implement MemPort;
 * the processor issues CacheOps and receives commit / globally-performed
 * callbacks through the CacheClient interface.
 */

#ifndef WO_CPU_MEM_PORT_HH
#define WO_CPU_MEM_PORT_HH

#include <cstdint>

#include "cpu/isa.hh"
#include "sim/types.hh"

namespace wo {

/** One processor-issued memory operation handed to the memory system. */
struct CacheOp
{
    std::uint64_t id = 0; ///< processor-side operation id
    AccessKind kind = AccessKind::DataRead;
    Addr addr = 0;
    Word writeValue = 0; ///< for accesses with a write component
};

/** Callbacks from the memory system to its processor. */
class CacheClient
{
  public:
    virtual ~CacheClient() = default;

    /** The operation committed; @p read_value is valid for accesses with
     * a read component. */
    virtual void opCommitted(std::uint64_t id, Word read_value) = 0;

    /** The operation is globally performed. */
    virtual void opGloballyPerformed(std::uint64_t id) = 0;

    /** The outstanding-access counter just reached zero. */
    virtual void counterReadsZero() {}
};

/** Abstract memory-side port used by a Processor. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Register the callback sink. */
    virtual void setPortClient(CacheClient *c) = 0;

    /** Issue one memory operation. */
    virtual void request(const CacheOp &op) = 0;
};

} // namespace wo

#endif // WO_CPU_MEM_PORT_HH
