#include "cpu/isa.hh"

#include <cassert>
#include <sstream>

namespace wo {

bool
isSync(AccessKind k)
{
    return k == AccessKind::SyncRead || k == AccessKind::SyncWrite ||
           k == AccessKind::SyncRmw;
}

bool
readsMemory(AccessKind k)
{
    return k == AccessKind::DataRead || k == AccessKind::SyncRead ||
           k == AccessKind::SyncRmw;
}

bool
writesMemory(AccessKind k)
{
    return k == AccessKind::DataWrite || k == AccessKind::SyncWrite ||
           k == AccessKind::SyncRmw;
}

std::string
toString(AccessKind k)
{
    switch (k) {
      case AccessKind::DataRead: return "R";
      case AccessKind::DataWrite: return "W";
      case AccessKind::SyncRead: return "S(r)";
      case AccessKind::SyncWrite: return "S(w)";
      case AccessKind::SyncRmw: return "S(rw)";
    }
    return "?";
}

bool
Instruction::isMemOp() const
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::TestAndSet:
      case Opcode::SyncRead:
      case Opcode::SyncWrite:
        return true;
      default:
        return false;
    }
}

AccessKind
Instruction::accessKind() const
{
    switch (op) {
      case Opcode::Load: return AccessKind::DataRead;
      case Opcode::Store: return AccessKind::DataWrite;
      case Opcode::TestAndSet: return AccessKind::SyncRmw;
      case Opcode::SyncRead: return AccessKind::SyncRead;
      case Opcode::SyncWrite: return AccessKind::SyncWrite;
      default:
        assert(false && "accessKind() on non-memory opcode");
        return AccessKind::DataRead;
    }
}

std::string
toString(Opcode op)
{
    switch (op) {
      case Opcode::Load: return "LOAD";
      case Opcode::Store: return "STORE";
      case Opcode::TestAndSet: return "TAS";
      case Opcode::SyncRead: return "TEST";
      case Opcode::SyncWrite: return "UNSET";
      case Opcode::Movi: return "MOVI";
      case Opcode::Addi: return "ADDI";
      case Opcode::Beq: return "BEQ";
      case Opcode::Bne: return "BNE";
      case Opcode::Fence: return "FENCE";
      case Opcode::Nop: return "NOP";
      case Opcode::Halt: return "HALT";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << wo::toString(op);
    switch (op) {
      case Opcode::Load:
      case Opcode::SyncRead:
        oss << " r" << dst << ", [" << addr << "]";
        break;
      case Opcode::Store:
      case Opcode::SyncWrite:
        oss << " [" << addr << "], ";
        if (src >= 0)
            oss << "r" << src;
        else
            oss << "#" << imm;
        break;
      case Opcode::TestAndSet:
        oss << " r" << dst << ", [" << addr << "], #" << imm;
        break;
      case Opcode::Movi:
        oss << " r" << dst << ", #" << imm;
        break;
      case Opcode::Addi:
        oss << " r" << dst << ", r" << src << ", #" << imm;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
        oss << " r" << src << ", #" << imm << ", @" << target;
        break;
      case Opcode::Fence:
      case Opcode::Nop:
      case Opcode::Halt:
        break;
    }
    return oss.str();
}

} // namespace wo
