/**
 * @file
 * Static program representation: per-processor instruction sequences.
 */

#ifndef WO_CPU_PROGRAM_HH
#define WO_CPU_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/isa.hh"
#include "sim/types.hh"

namespace wo {

/** The instruction sequence run by one processor. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::vector<Instruction> code) : code_(std::move(code))
    {}

    /** Number of static instructions. */
    int size() const { return static_cast<int>(code_.size()); }

    /** Instruction at index @p pc. */
    const Instruction &at(int pc) const { return code_.at(pc); }

    /** Append an instruction. */
    void push(const Instruction &insn) { code_.push_back(insn); }

    /** All instructions. */
    const std::vector<Instruction> &code() const { return code_; }

    /** Mutable access (used by the builder for branch patching). */
    std::vector<Instruction> &code() { return code_; }

    /** Highest register index referenced, or -1 for none. */
    int maxRegister() const;

    /** All distinct addresses referenced by memory ops. */
    std::vector<Addr> touchedAddrs() const;

    /** Multi-line disassembly. */
    std::string toString() const;

  private:
    std::vector<Instruction> code_;
};

/**
 * A complete multiprocessor workload: one Program per processor plus
 * initial memory contents (all unlisted locations start at zero, matching
 * the paper's hypothetical initializing writes).
 */
class MultiProgram
{
  public:
    MultiProgram() = default;
    explicit MultiProgram(std::string name) : name_(std::move(name)) {}

    /** Workload name (used in reports). */
    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Number of processors. */
    int numProcs() const { return static_cast<int>(programs_.size()); }

    /** Append a processor's program; returns its ProcId. */
    ProcId addProgram(Program p);

    /** Program of processor @p id. */
    const Program &program(ProcId id) const { return programs_.at(id); }

    /** Initial value for @p addr (0 unless overridden). */
    Word initialValue(Addr addr) const;

    /** Override the initial value of one location. */
    void setInitial(Addr addr, Word value);

    /** Explicitly initialized locations. */
    const std::vector<std::pair<Addr, Word>> &initials() const
    {
        return initials_;
    }

    /** Registers needed per processor (max over all programs, >= 1). */
    int numRegisters() const;

    /** Union of addresses touched by any processor. */
    std::vector<Addr> touchedAddrs() const;

    /**
     * 64-bit content hash over the instruction streams and initial
     * memory values (the name is excluded — it cannot affect any
     * execution). Equal program content hashes equally regardless of
     * the order initials were declared in, so the hash can key verdict
     * memos (e.g. the campaign engine's DRF0 memo).
     */
    std::uint64_t contentHash() const;

    /** Multi-line disassembly of the whole workload. */
    std::string toString() const;

  private:
    std::string name_;
    std::vector<Program> programs_;
    std::vector<std::pair<Addr, Word>> initials_;
};

} // namespace wo

#endif // WO_CPU_PROGRAM_HH
