/**
 * @file
 * The simulated processor: executes one Program, issuing memory accesses
 * through a MemPort under the control of a ConsistencyPolicy.
 *
 * Intra-processor dependencies (condition 1 of Section 5.1) are always
 * preserved: register data dependencies via a scoreboard, and
 * same-address memory ordering by blocking a new access to a location
 * while an earlier access to it is uncommitted.
 *
 * An optional write buffer (legal only under the Relaxed policy) lets
 * reads bypass buffered writes — the classic uniprocessor optimization
 * whose effect on multiprocessors Figure 1 of the paper illustrates.
 */

#ifndef WO_CPU_PROCESSOR_HH
#define WO_CPU_PROCESSOR_HH

#include <array>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "consistency/policy.hh"
#include "core/trace.hh"
#include "cpu/mem_port.hh"
#include "cpu/program.hh"
#include "obs/latency_histogram.hh"
#include "obs/trace_event.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace wo {

class TraceSink;

/** Processor configuration. */
struct ProcessorConfig
{
    /** Enable the store buffer (reads pass pending writes). Only legal
     * when the policy allows it. */
    bool useWriteBuffer = false;

    /** Minimum residence of a write in the buffer before it drains to the
     * memory system (models waiting for an idle bus slot); this is what
     * actually lets a subsequent read overtake the write. */
    Tick wbDrainDelay = 6;

    /** Max memory ops issued to the port and not yet committed. */
    int maxOutstanding = 8;

    /** Cycle time: one instruction dispatched per cycle. */
    Tick cycle = 1;
};

/** One simulated processor. */
class Processor : public CacheClient
{
  public:
    Processor(EventQueue &eq, StatSet &stats, ProcId id,
              const Program &program, MemPort &port,
              const ConsistencyPolicy &policy, ExecutionTrace *trace,
              const ProcessorConfig &cfg);

    /** Kick off execution (schedules the first dispatch). */
    void start();

    /**
     * Restore construction-time state and bind a (possibly different)
     * program for the next run. Registers are re-sized for the new
     * program; all in-flight op records, write-buffer entries and
     * stall attribution are dropped. The caller must have reset the
     * event queue first so no stale dispatch events survive.
     */
    void reset(const Program &program);

    /** True once the Halt instruction retired. */
    bool halted() const { return halted_; }

    /** Tick at which Halt retired (kNoTick while running). */
    Tick haltTick() const { return halt_tick_; }

    /** Architectural registers. */
    const std::vector<Word> &registers() const { return regs_; }

    /** Cycles this processor spent unable to dispatch. */
    Tick stallCycles() const { return stall_cycles_; }

    /** Stalled cycles attributed to @p r. The per-reason cycles always
     * sum to stallCycles(): each stall segment is closed into exactly
     * one reason bucket when dispatch resumes (or the reason changes). */
    Tick
    stallCyclesFor(StallReason r) const
    {
        return stall_by_reason_[static_cast<std::size_t>(r)];
    }

    /**
     * Attach a structured trace sink (nullptr detaches). Enables event
     * emission, the issue->globally-performed latency histogram and the
     * per-reason stall stats flushed by finalizeObs(). With no sink
     * attached the only cost per potential event is this null test.
     */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    /** Export observability stats (stall attribution) into the StatSet.
     * Called at end of run; a no-op when no sink is attached, so
     * tracing-off stat output is unchanged. */
    void finalizeObs();

    /** The issue->globally-performed latency histogram (samples only
     * accumulate while a trace sink is attached). */
    const LatencyHistogram &issueGpHistogram() const { return lat_gp_; }

    /** Dynamic instructions retired. */
    std::uint64_t instructions() const { return instructions_; }

    /** True when no issued op is still outstanding (all committed and
     * globally performed) and the write buffer is empty. */
    bool quiescent() const;

    // CacheClient interface.
    void opCommitted(std::uint64_t id, Word read_value) override;
    void opGloballyPerformed(std::uint64_t id) override;
    void counterReadsZero() override;

  private:
    struct OpRecord
    {
        int traceId = -1;
        AccessKind kind = AccessKind::DataRead;
        Addr addr = 0;
        int destReg = -1;
        bool committed = false;
        bool gp = false;
        bool fromWriteBuffer = false;
        Tick issueTick = 0;
    };

    struct WbEntry
    {
        std::uint64_t id;
        Addr addr;
        Word value;
        Tick insertTick;
    };

    void scheduleAdvance(Tick delay);
    void tryAdvance();
    bool issueMemOp(const Instruction &insn, StallReason *why);
    void drainWriteBuffer();
    void noteStall(StallReason why);
    void noteProgress();
    void closeStallSegment(Tick now);
    void emitOpEvent(TraceKind kind, const OpRecord &rec,
                     std::uint64_t id);
    ProcState snapshot() const;
    bool regBusy(int r) const { return r >= 0 && reg_busy_[r]; }
    std::uint64_t nextId() { return ++last_id_; }
    int recordTraceAccess(AccessKind kind, Addr addr, Word write_value);

    EventQueue &eq_;
    StatSet &stats_;
    ProcId id_;
    /** Owned by the System/harness; rebound by reset() when the job's
     * MultiProgram changes, hence a pointer rather than a reference. */
    const Program *program_;
    MemPort &port_;
    const ConsistencyPolicy &policy_;
    ExecutionTrace *trace_;
    ProcessorConfig cfg_;
    std::string name_;

    /** Interned stat handles, resolved once at construction. */
    struct StatHandles
    {
        StatHandle instructions;
        StatHandle wbInserts;
        StatHandle wbForwards;
        StatHandle policyStalls;
        StatHandle memOps;
    };
    StatHandles stat_;

    int pc_ = 0;
    std::vector<Word> regs_;
    std::vector<bool> reg_busy_;
    bool halted_ = false;
    Tick halt_tick_ = kNoTick;

    std::map<std::uint64_t, OpRecord> ops_;
    std::set<Addr> addr_blocked_;
    std::deque<WbEntry> write_buffer_;
    bool wb_drain_in_flight_ = false;

    int outstanding_ = 0;
    int not_gp_ = 0;
    int syncs_not_committed_ = 0;
    int syncs_not_gp_ = 0;

    std::uint64_t last_id_ = 0;
    int mem_op_index_ = 0;
    bool advance_scheduled_ = false;
    Tick stall_since_ = kNoTick;
    Tick stall_cycles_ = 0;
    std::uint64_t instructions_ = 0;

    /** Structured tracing (null = disabled path). */
    TraceSink *sink_ = nullptr;
    StallReason stall_reason_ = StallReason::CounterNonzero;
    std::array<Tick, kNumStallReasons> stall_by_reason_{};
    LatencyHistogram lat_gp_;
};

} // namespace wo

#endif // WO_CPU_PROCESSOR_HH
