/**
 * @file
 * Fluent builder for per-processor programs with symbolic labels.
 *
 * Example (a test-and-test&set acquire):
 * @code
 *   ProgramBuilder b;
 *   b.label("spin")
 *    .test(0, kLock)          // r0 = Test(lock)   (read-only sync)
 *    .bne(0, 0, "spin")       // spin while held
 *    .tas(0, kLock)           // r0 = TestAndSet(lock)
 *    .bne(0, 0, "spin")       // lost the race: spin again
 *    ...critical section...
 *    .unset(kLock)
 *    .halt();
 *   Program p = b.build();
 * @endcode
 */

#ifndef WO_CPU_PROGRAM_BUILDER_HH
#define WO_CPU_PROGRAM_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "cpu/program.hh"

namespace wo {

/** Builds a Program instruction by instruction, resolving labels at
 * build() time. */
class ProgramBuilder
{
  public:
    /** r[dst] = mem[addr] (data read). */
    ProgramBuilder &load(int dst, Addr addr);

    /** mem[addr] = imm (data write). */
    ProgramBuilder &store(Addr addr, Word imm);

    /** mem[addr] = r[src] (data write of a register). */
    ProgramBuilder &storeReg(Addr addr, int src);

    /** r[dst] = mem[addr]; mem[addr] = write_value (read-write sync). */
    ProgramBuilder &tas(int dst, Addr addr, Word write_value = 1);

    /** r[dst] = mem[addr] (read-only sync; the paper's "Test"). */
    ProgramBuilder &test(int dst, Addr addr);

    /** mem[addr] = imm (write-only sync; the paper's "Unset"). */
    ProgramBuilder &unset(Addr addr, Word imm = 0);

    /** mem[addr] = r[src] as a write-only sync. */
    ProgramBuilder &unsetReg(Addr addr, int src);

    /** r[dst] = imm. */
    ProgramBuilder &movi(int dst, Word imm);

    /** r[dst] = r[src] + imm. */
    ProgramBuilder &addi(int dst, int src, Word imm);

    /** if (r[src] == imm) goto label. */
    ProgramBuilder &beq(int src, Word imm, const std::string &label);

    /** if (r[src] != imm) goto label. */
    ProgramBuilder &bne(int src, Word imm, const std::string &label);

    /** Stall until all previous accesses are globally performed. */
    ProgramBuilder &fence();

    /** One cycle of non-memory work; @p n repeats. */
    ProgramBuilder &nop(int n = 1);

    /** Stop the processor. */
    ProgramBuilder &halt();

    /** Bind @p name to the next instruction's index. */
    ProgramBuilder &label(const std::string &name);

    /** Resolve labels and return the finished program. */
    Program build() const;

    /** Index the next instruction will get. */
    int nextIndex() const { return static_cast<int>(code_.size()); }

  private:
    struct Fixup
    {
        int index;
        std::string label;
    };

    ProgramBuilder &push(Instruction insn);

    std::vector<Instruction> code_;
    std::map<std::string, int> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace wo

#endif // WO_CPU_PROGRAM_BUILDER_HH
