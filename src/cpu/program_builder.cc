#include "cpu/program_builder.hh"

#include <stdexcept>

namespace wo {

ProgramBuilder &
ProgramBuilder::push(Instruction insn)
{
    code_.push_back(insn);
    return *this;
}

ProgramBuilder &
ProgramBuilder::load(int dst, Addr addr)
{
    Instruction i;
    i.op = Opcode::Load;
    i.dst = dst;
    i.addr = addr;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::store(Addr addr, Word imm)
{
    Instruction i;
    i.op = Opcode::Store;
    i.addr = addr;
    i.imm = imm;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::storeReg(Addr addr, int src)
{
    Instruction i;
    i.op = Opcode::Store;
    i.addr = addr;
    i.src = src;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::tas(int dst, Addr addr, Word write_value)
{
    Instruction i;
    i.op = Opcode::TestAndSet;
    i.dst = dst;
    i.addr = addr;
    i.imm = write_value;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::test(int dst, Addr addr)
{
    Instruction i;
    i.op = Opcode::SyncRead;
    i.dst = dst;
    i.addr = addr;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::unset(Addr addr, Word imm)
{
    Instruction i;
    i.op = Opcode::SyncWrite;
    i.addr = addr;
    i.imm = imm;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::unsetReg(Addr addr, int src)
{
    Instruction i;
    i.op = Opcode::SyncWrite;
    i.addr = addr;
    i.src = src;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::movi(int dst, Word imm)
{
    Instruction i;
    i.op = Opcode::Movi;
    i.dst = dst;
    i.imm = imm;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::addi(int dst, int src, Word imm)
{
    Instruction i;
    i.op = Opcode::Addi;
    i.dst = dst;
    i.src = src;
    i.imm = imm;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::beq(int src, Word imm, const std::string &label)
{
    Instruction i;
    i.op = Opcode::Beq;
    i.src = src;
    i.imm = imm;
    fixups_.push_back({static_cast<int>(code_.size()), label});
    return push(i);
}

ProgramBuilder &
ProgramBuilder::bne(int src, Word imm, const std::string &label)
{
    Instruction i;
    i.op = Opcode::Bne;
    i.src = src;
    i.imm = imm;
    fixups_.push_back({static_cast<int>(code_.size()), label});
    return push(i);
}

ProgramBuilder &
ProgramBuilder::fence()
{
    Instruction i;
    i.op = Opcode::Fence;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::nop(int n)
{
    for (int k = 0; k < n; ++k) {
        Instruction i;
        i.op = Opcode::Nop;
        push(i);
    }
    return *this;
}

ProgramBuilder &
ProgramBuilder::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    return push(i);
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    auto [it, inserted] =
        labels_.emplace(name, static_cast<int>(code_.size()));
    if (!inserted)
        throw std::invalid_argument("duplicate label: " + name);
    return *this;
}

Program
ProgramBuilder::build() const
{
    std::vector<Instruction> code = code_;
    for (const auto &f : fixups_) {
        auto it = labels_.find(f.label);
        if (it == labels_.end())
            throw std::invalid_argument("undefined label: " + f.label);
        code[f.index].target = it->second;
    }
    // Every program implicitly halts at the end.
    if (code.empty() || code.back().op != Opcode::Halt) {
        Instruction h;
        h.op = Opcode::Halt;
        code.push_back(h);
    }
    return Program(std::move(code));
}

} // namespace wo
