#include "cpu/processor.hh"

#include <cassert>

#include "obs/trace_sink.hh"
#include "sim/logging.hh"

namespace wo {

namespace {

/** Static access-kind tags for TraceEvent::detail. */
const char *
accessKindTag(AccessKind k)
{
    switch (k) {
      case AccessKind::DataRead: return "data_read";
      case AccessKind::DataWrite: return "data_write";
      case AccessKind::SyncRead: return "sync_read";
      case AccessKind::SyncWrite: return "sync_write";
      case AccessKind::SyncRmw: return "sync_rmw";
    }
    return "?";
}

} // namespace

Processor::Processor(EventQueue &eq, StatSet &stats, ProcId id,
                     const Program &program, MemPort &port,
                     const ConsistencyPolicy &policy, ExecutionTrace *trace,
                     const ProcessorConfig &cfg)
    : eq_(eq), stats_(stats), id_(id), program_(&program), port_(port),
      policy_(policy), trace_(trace), cfg_(cfg),
      name_("proc" + std::to_string(id)),
      lat_gp_(stats, "proc" + std::to_string(id) + ".lat_issue_gp")
{
    stat_.instructions = stats_.handle(name_ + ".instructions");
    stat_.wbInserts = stats_.handle(name_ + ".wb_inserts");
    stat_.wbForwards = stats_.handle(name_ + ".wb_forwards");
    stat_.policyStalls = stats_.handle(name_ + ".policy_stalls");
    stat_.memOps = stats_.handle(name_ + ".mem_ops");
    int nregs = std::max(program.maxRegister() + 1, 1);
    regs_.assign(nregs, 0);
    reg_busy_.assign(nregs, false);
    assert((!cfg_.useWriteBuffer || policy_.allowWriteBuffer()) &&
           "write buffer is illegal under this consistency policy");
    port_.setPortClient(this);
}

void
Processor::reset(const Program &program)
{
    program_ = &program;
    pc_ = 0;
    int nregs = std::max(program.maxRegister() + 1, 1);
    regs_.assign(nregs, 0);
    reg_busy_.assign(nregs, false);
    halted_ = false;
    halt_tick_ = kNoTick;
    ops_.clear();
    addr_blocked_.clear();
    write_buffer_.clear();
    wb_drain_in_flight_ = false;
    outstanding_ = 0;
    not_gp_ = 0;
    syncs_not_committed_ = 0;
    syncs_not_gp_ = 0;
    last_id_ = 0;
    mem_op_index_ = 0;
    // Safe only because the owner reset the event queue first: any
    // pending dispatch lambda was destroyed with it.
    advance_scheduled_ = false;
    stall_since_ = kNoTick;
    stall_cycles_ = 0;
    instructions_ = 0;
    stall_reason_ = StallReason::CounterNonzero;
    stall_by_reason_.fill(0);
    lat_gp_.reset();
}

void
Processor::start()
{
    if (program_->size() == 0) {
        halted_ = true;
        halt_tick_ = eq_.now();
        return;
    }
    scheduleAdvance(0);
}

bool
Processor::quiescent() const
{
    return ops_.empty() && write_buffer_.empty() && !wb_drain_in_flight_;
}

void
Processor::scheduleAdvance(Tick delay)
{
    if (advance_scheduled_ || halted_)
        return;
    advance_scheduled_ = true;
    eq_.scheduleAfter(delay, [this] {
        advance_scheduled_ = false;
        tryAdvance();
    });
}

void
Processor::closeStallSegment(Tick now)
{
    Tick d = now - stall_since_;
    stall_cycles_ += d;
    stall_by_reason_[static_cast<std::size_t>(stall_reason_)] += d;
}

namespace {

/** One coverage row per stall reason, keyed like the per-proc stats
 * but instance-stripped ("proc_stall/fence"): a stall *activation* is
 * a segment opening with that reason, matching StallBegin events. */
void
coverStallSegment(StallReason why)
{
    CoverageMap *cov = activeCoverage();
    if (!cov)
        return;
    static const std::array<std::string, kNumStallReasons> keys = [] {
        std::array<std::string, kNumStallReasons> k;
        for (int i = 0; i < kNumStallReasons; ++i) {
            k[i] = std::string("proc_stall/") +
                   toString(static_cast<StallReason>(i));
        }
        return k;
    }();
    // Per-thread interned-id cache, (map, generation)-validated: spin
    // loops open segments hot enough that hashing the key per segment
    // shows up in trace_overhead's coverage gate.
    thread_local CoverageMap *cached_map = nullptr;
    thread_local std::uint64_t cached_gen = 0;
    thread_local std::array<std::uint32_t, kNumStallReasons> ids;
    if (cov != cached_map || cov->generation() != cached_gen) {
        for (int i = 0; i < kNumStallReasons; ++i)
            ids[i] = cov->internKey(CoverageMap::Dim::Stall, keys[i]);
        cached_map = cov;
        cached_gen = cov->generation();
    }
    cov->hit(CoverageMap::Dim::Stall,
             ids[static_cast<std::size_t>(why)]);
}

} // namespace

void
Processor::noteStall(StallReason why)
{
    if (stall_since_ == kNoTick) {
        stall_since_ = eq_.now();
        stall_reason_ = why;
        coverStallSegment(why);
        if (sink_) {
            TraceEvent ev;
            ev.tick = eq_.now();
            ev.comp = TraceComp::Proc;
            ev.kind = TraceKind::StallBegin;
            ev.compId = id_;
            ev.proc = id_;
            ev.detail = toString(why);
            sink_->record(ev);
        }
    } else if (why != stall_reason_) {
        // Attribute the elapsed segment to the old reason, then open a
        // new segment; total and per-reason cycles stay in lockstep.
        closeStallSegment(eq_.now());
        stall_since_ = eq_.now();
        coverStallSegment(why);
        if (sink_) {
            TraceEvent ev;
            ev.tick = eq_.now();
            ev.comp = TraceComp::Proc;
            ev.kind = TraceKind::StallEnd;
            ev.compId = id_;
            ev.proc = id_;
            ev.detail = toString(stall_reason_);
            sink_->record(ev);
            ev.kind = TraceKind::StallBegin;
            ev.detail = toString(why);
            sink_->record(ev);
        }
        stall_reason_ = why;
    }
}

void
Processor::noteProgress()
{
    if (stall_since_ != kNoTick) {
        closeStallSegment(eq_.now());
        stall_since_ = kNoTick;
        if (sink_) {
            TraceEvent ev;
            ev.tick = eq_.now();
            ev.comp = TraceComp::Proc;
            ev.kind = TraceKind::StallEnd;
            ev.compId = id_;
            ev.proc = id_;
            ev.detail = toString(stall_reason_);
            sink_->record(ev);
        }
    }
}

void
Processor::emitOpEvent(TraceKind kind, const OpRecord &rec,
                       std::uint64_t id)
{
    TraceEvent ev;
    ev.tick = eq_.now();
    ev.comp = TraceComp::Proc;
    ev.kind = kind;
    ev.compId = id_;
    ev.proc = id_;
    ev.addr = rec.addr;
    ev.opId = id;
    ev.detail = accessKindTag(rec.kind);
    if (trace_ && rec.traceId >= 0 && rec.traceId >= trace_->firstId()) {
        // Carry the access values so sinks can reconstruct replayable
        // traces: `value` is the written value (known from issue),
        // `aux` the read value (bound at commit, 0 before).
        const Access &a = trace_->at(rec.traceId);
        ev.value = a.valueWritten;
        ev.aux = static_cast<std::int64_t>(a.valueRead);
    }
    sink_->record(ev);
}

void
Processor::finalizeObs()
{
    if (!sink_)
        return;
    stats_.set(name_ + ".stall_cycles_total", stall_cycles_);
    for (int r = 0; r < kNumStallReasons; ++r) {
        StallReason reason = static_cast<StallReason>(r);
        stats_.set(name_ + ".stall." + toString(reason),
                   stall_by_reason_[static_cast<std::size_t>(r)]);
    }
}

ProcState
Processor::snapshot() const
{
    ProcState st;
    st.outstanding = outstanding_;
    st.notGloballyPerformed = not_gp_;
    st.syncsNotCommitted = syncs_not_committed_;
    st.syncsNotGloballyPerformed = syncs_not_gp_;
    st.writeBufferDepth = static_cast<int>(write_buffer_.size());
    return st;
}

int
Processor::recordTraceAccess(AccessKind kind, Addr addr, Word write_value)
{
    if (!trace_)
        return -1;
    Access a;
    a.proc = id_;
    a.poIndex = mem_op_index_++;
    a.kind = kind;
    a.addr = addr;
    a.valueWritten = write_value;
    return trace_->add(a);
}

void
Processor::tryAdvance()
{
    if (halted_)
        return;
    if (pc_ >= program_->size()) {
        halted_ = true;
        halt_tick_ = eq_.now();
        return;
    }
    const Instruction &insn = program_->at(pc_);
    switch (insn.op) {
      case Opcode::Movi:
        if (regBusy(insn.dst)) {
            noteStall(StallReason::Dependency);
            return;
        }
        regs_[insn.dst] = insn.imm;
        break;
      case Opcode::Addi:
        if (regBusy(insn.src) || regBusy(insn.dst)) {
            noteStall(StallReason::Dependency);
            return;
        }
        regs_[insn.dst] = regs_[insn.src] + insn.imm;
        break;
      case Opcode::Nop:
        break;
      case Opcode::Beq:
      case Opcode::Bne:
        if (regBusy(insn.src)) {
            noteStall(StallReason::Dependency);
            return;
        }
        break;
      case Opcode::Fence:
        // RP3-style fence: wait for every previous access (including
        // buffered writes) to be globally performed.
        if (not_gp_ > 0 || !write_buffer_.empty() ||
            wb_drain_in_flight_) {
            noteStall(StallReason::Fence);
            return;
        }
        break;
      case Opcode::Halt:
        noteProgress();
        halted_ = true;
        halt_tick_ = eq_.now();
        ++instructions_;
        return;
      default: { // memory operations
        StallReason why = StallReason::CounterNonzero;
        if (!issueMemOp(insn, &why)) {
            noteStall(why);
            return;
        }
        break;
      }
    }
    noteProgress();
    ++instructions_;
    stats_.inc(stat_.instructions);

    // Advance the pc.
    if (insn.op == Opcode::Beq && regs_[insn.src] == insn.imm) {
        pc_ = insn.target;
    } else if (insn.op == Opcode::Bne && regs_[insn.src] != insn.imm) {
        pc_ = insn.target;
    } else {
        ++pc_;
    }
    scheduleAdvance(cfg_.cycle);
}

bool
Processor::issueMemOp(const Instruction &insn, StallReason *why)
{
    AccessKind kind = insn.accessKind();
    bool is_write_like = writesMemory(kind);
    bool needs_src =
        (insn.op == Opcode::Store || insn.op == Opcode::SyncWrite) &&
        insn.src >= 0;
    if (needs_src && regBusy(insn.src)) {
        *why = StallReason::Dependency;
        return false;
    }
    if (readsMemory(kind) && regBusy(insn.dst)) {
        *why = StallReason::Dependency;
        return false;
    }

    Word write_value = 0;
    if (is_write_like) {
        if (insn.op == Opcode::TestAndSet)
            write_value = insn.imm;
        else
            write_value = insn.src >= 0 ? regs_[insn.src] : insn.imm;
    }

    // Write-buffer fast paths (Relaxed policy only).
    if (cfg_.useWriteBuffer) {
        if (kind == AccessKind::DataWrite) {
            std::uint64_t id = nextId();
            OpRecord rec;
            rec.kind = kind;
            rec.addr = insn.addr;
            rec.committed = true; // architecturally complete at insert
            rec.fromWriteBuffer = true;
            rec.issueTick = eq_.now();
            rec.traceId = recordTraceAccess(kind, insn.addr, write_value);
            if (trace_ && rec.traceId >= 0)
                trace_->mutableAt(rec.traceId).commitTick = eq_.now();
            ops_[id] = rec;
            ++not_gp_;
            write_buffer_.push_back({id, insn.addr, write_value,
                                     eq_.now()});
            stats_.inc(stat_.wbInserts);
            if (sink_)
                emitOpEvent(TraceKind::WbInsert, rec, id);
            drainWriteBuffer();
            return true;
        }
        if (kind == AccessKind::DataRead) {
            // Forward the youngest buffered write to the same address.
            for (auto it = write_buffer_.rbegin();
                 it != write_buffer_.rend(); ++it) {
                if (it->addr == insn.addr) {
                    regs_[insn.dst] = it->value;
                    int tid = recordTraceAccess(kind, insn.addr, 0);
                    if (trace_ && tid >= 0) {
                        Access &a = trace_->mutableAt(tid);
                        a.valueRead = it->value;
                        a.commitTick = eq_.now();
                        a.gpTick = eq_.now();
                    }
                    stats_.inc(stat_.wbForwards);
                    if (sink_) {
                        TraceEvent ev;
                        ev.tick = eq_.now();
                        ev.comp = TraceComp::Proc;
                        ev.kind = TraceKind::WbForward;
                        ev.compId = id_;
                        ev.proc = id_;
                        ev.addr = insn.addr;
                        ev.value = it->value;
                        sink_->record(ev);
                    }
                    return true;
                }
            }
            // No match: the read bypasses all buffered writes and issues.
        }
        if (isSync(kind) &&
            (!write_buffer_.empty() || wb_drain_in_flight_)) {
            *why = StallReason::BufferFull;
            return false; // synchronization drains the buffer first
        }
    }

    // Ordinary issue.
    if (addr_blocked_.count(insn.addr)) {
        *why = StallReason::SameAddr;
        return false; // same-address ordering (condition 1)
    }
    if (outstanding_ >= cfg_.maxOutstanding) {
        *why = StallReason::BufferFull;
        return false;
    }
    if (!policy_.mayIssue(kind, snapshot())) {
        stats_.inc(stat_.policyStalls);
        *why = policy_.refusalReason(kind, snapshot());
        return false;
    }

    std::uint64_t id = nextId();
    OpRecord rec;
    rec.kind = kind;
    rec.addr = insn.addr;
    rec.destReg = readsMemory(kind) ? insn.dst : -1;
    rec.issueTick = eq_.now();
    rec.traceId = recordTraceAccess(kind, insn.addr, write_value);
    ops_[id] = rec;

    ++outstanding_;
    ++not_gp_;
    if (isSync(kind)) {
        ++syncs_not_committed_;
        ++syncs_not_gp_;
    }
    addr_blocked_.insert(insn.addr);
    if (rec.destReg >= 0)
        reg_busy_[rec.destReg] = true;

    stats_.inc(stat_.memOps);
    if (sink_)
        emitOpEvent(TraceKind::Issue, rec, id);
    CacheOp op;
    op.id = id;
    op.kind = kind;
    op.addr = insn.addr;
    op.writeValue = write_value;
    port_.request(op);
    return true;
}

void
Processor::drainWriteBuffer()
{
    if (wb_drain_in_flight_ || write_buffer_.empty())
        return;
    const WbEntry &head = write_buffer_.front();
    // Same-address ordering (condition 1) binds the drain too: the cache
    // holds one miss per address, so the head must wait while an
    // ordinary access to its line is outstanding. opCommitted clears the
    // block and re-invokes the drain.
    if (addr_blocked_.count(head.addr))
        return;
    Tick ready = head.insertTick + cfg_.wbDrainDelay;
    Tick delay = ready > eq_.now() ? ready - eq_.now() : 0;
    if (delay > 0) {
        // Re-decide at ready time; the address block may change. A
        // duplicate wakeup is harmless — the re-check is idempotent.
        eq_.scheduleAfter(delay, [this] { drainWriteBuffer(); });
        return;
    }
    wb_drain_in_flight_ = true;
    CacheOp op;
    op.id = head.id;
    op.kind = AccessKind::DataWrite;
    op.addr = head.addr;
    op.writeValue = head.value;
    port_.request(op);
}

void
Processor::opCommitted(std::uint64_t id, Word read_value)
{
    auto it = ops_.find(id);
    assert(it != ops_.end() && "commit for unknown op");
    OpRecord &rec = it->second;

    if (rec.fromWriteBuffer) {
        // The head drain reached the cache; release the buffer slot.
        assert(!write_buffer_.empty() && write_buffer_.front().id == id);
        write_buffer_.pop_front();
        wb_drain_in_flight_ = false;
        drainWriteBuffer();
        if (rec.gp) // GP raced ahead of the commit notification
            ops_.erase(it);
        scheduleAdvance(0);
        return;
    }

    assert(!rec.committed);
    rec.committed = true;
    --outstanding_;
    if (isSync(rec.kind))
        --syncs_not_committed_;
    addr_blocked_.erase(rec.addr);
    drainWriteBuffer(); // a buffered write to rec.addr may be waiting
    if (rec.destReg >= 0) {
        regs_[rec.destReg] = read_value;
        reg_busy_[rec.destReg] = false;
    }
    if (trace_ && rec.traceId >= 0) {
        Access &a = trace_->mutableAt(rec.traceId);
        a.commitTick = eq_.now();
        if (readsMemory(rec.kind))
            a.valueRead = read_value;
    }
    if (sink_)
        emitOpEvent(TraceKind::Commit, rec, id);
    if (rec.gp)
        ops_.erase(it);
    scheduleAdvance(0);
}

void
Processor::opGloballyPerformed(std::uint64_t id)
{
    auto it = ops_.find(id);
    assert(it != ops_.end() && "gp for unknown op");
    OpRecord &rec = it->second;
    assert(!rec.gp);
    rec.gp = true;
    --not_gp_;
    if (isSync(rec.kind))
        --syncs_not_gp_;
    if (trace_ && rec.traceId >= 0)
        trace_->mutableAt(rec.traceId).gpTick = eq_.now();
    if (sink_) {
        emitOpEvent(TraceKind::GloballyPerformed, rec, id);
        lat_gp_.record(eq_.now() - rec.issueTick);
    } else {
        // Tracing off: keep the latency *buckets* observable to an
        // installed CoverageMap without interning any stats.
        lat_gp_.coverOnly(eq_.now() - rec.issueTick);
    }
    bool done = rec.committed;
    if (done)
        ops_.erase(it);
    scheduleAdvance(0);
}

void
Processor::counterReadsZero()
{
    scheduleAdvance(0);
}

} // namespace wo
