/**
 * @file
 * The miniature instruction set executed by the simulated processors.
 *
 * The ISA is deliberately tiny but complete enough to express every program
 * the paper reasons about: the Figure 1 (Dekker-style) litmus, producer /
 * consumer with Unset/TestAndSet synchronization (Figure 3), spin locks,
 * test-and-test&set locks and barrier spins (Section 6), and random
 * lock-structured workloads.
 *
 * Synchronization operations follow DRF0's restrictions: each accesses
 * exactly one memory location, and is recognizable by the hardware by
 * opcode. Three flavours exist, matching the paper's Section 6 taxonomy:
 * read-only (Test), write-only (Unset), and read-write (TestAndSet).
 */

#ifndef WO_CPU_ISA_HH
#define WO_CPU_ISA_HH

#include <string>

#include "sim/types.hh"

namespace wo {

/** Opcodes of the simulated ISA. */
enum class Opcode {
    Load,       ///< r[dst] = mem[addr]              (data read)
    Store,      ///< mem[addr] = value               (data write)
    TestAndSet, ///< r[dst] = mem[addr]; mem[addr]=imm (read-write sync)
    SyncRead,   ///< r[dst] = mem[addr]              (read-only sync, Test)
    SyncWrite,  ///< mem[addr] = value               (write-only sync, Unset)
    Movi,       ///< r[dst] = imm
    Addi,       ///< r[dst] = r[src] + imm
    Beq,        ///< if (r[src] == imm) goto target
    Bne,        ///< if (r[src] != imm) goto target
    Fence,      ///< stall until all previous accesses are globally
                ///< performed (the RP3-style fence of Section 2.1)
    Nop,        ///< spend one cycle (models "other work")
    Halt,       ///< stop this processor
};

/** Categories of dynamic memory accesses, as used by the formal core. */
enum class AccessKind {
    DataRead,
    DataWrite,
    SyncRead,  ///< read-only synchronization (Test)
    SyncWrite, ///< write-only synchronization (Unset)
    SyncRmw,   ///< read-write synchronization (TestAndSet)
};

/** True for the three synchronization access kinds. */
bool isSync(AccessKind k);

/** True if the access kind has a read component. */
bool readsMemory(AccessKind k);

/** True if the access kind has a write component. */
bool writesMemory(AccessKind k);

/** Short mnemonic, e.g. "R", "W", "S(r)", "S(w)", "S(rw)". */
std::string toString(AccessKind k);

/**
 * One static instruction.
 *
 * Operand conventions:
 *  - @c dst / @c src are register indices, -1 when unused.
 *  - For Store/SyncWrite, the value written is r[src] when src >= 0, else
 *    @c imm.
 *  - For TestAndSet, the value written is @c imm (1 by default).
 *  - @c target is the branch destination (instruction index).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    int dst = -1;
    int src = -1;
    Word imm = 0;
    Addr addr = 0;
    int target = -1;

    /** Field-wise equality (round-trip and differential tests). */
    bool operator==(const Instruction &o) const
    {
        return op == o.op && dst == o.dst && src == o.src &&
               imm == o.imm && addr == o.addr && target == o.target;
    }

    /** True for opcodes that touch memory. */
    bool isMemOp() const;

    /** Dynamic access kind of a memory opcode (asserts for non-mem ops). */
    AccessKind accessKind() const;

    /** Human-readable disassembly. */
    std::string toString() const;
};

/** Name of an opcode, e.g. "LOAD". */
std::string toString(Opcode op);

} // namespace wo

#endif // WO_CPU_ISA_HH
