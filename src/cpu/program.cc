#include "cpu/program.hh"

#include <algorithm>
#include <set>
#include <sstream>

namespace wo {

int
Program::maxRegister() const
{
    int m = -1;
    for (const auto &i : code_) {
        m = std::max(m, i.dst);
        m = std::max(m, i.src);
    }
    return m;
}

std::vector<Addr>
Program::touchedAddrs() const
{
    std::set<Addr> s;
    for (const auto &i : code_) {
        if (i.isMemOp())
            s.insert(i.addr);
    }
    return {s.begin(), s.end()};
}

std::string
Program::toString() const
{
    std::ostringstream oss;
    for (int pc = 0; pc < size(); ++pc)
        oss << "  " << pc << ": " << code_[pc].toString() << '\n';
    return oss.str();
}

ProcId
MultiProgram::addProgram(Program p)
{
    programs_.push_back(std::move(p));
    return static_cast<ProcId>(programs_.size()) - 1;
}

Word
MultiProgram::initialValue(Addr addr) const
{
    for (const auto &[a, v] : initials_) {
        if (a == addr)
            return v;
    }
    return 0;
}

void
MultiProgram::setInitial(Addr addr, Word value)
{
    for (auto &[a, v] : initials_) {
        if (a == addr) {
            v = value;
            return;
        }
    }
    initials_.emplace_back(addr, value);
}

int
MultiProgram::numRegisters() const
{
    int m = 0;
    for (const auto &p : programs_)
        m = std::max(m, p.maxRegister() + 1);
    return std::max(m, 1);
}

std::uint64_t
MultiProgram::contentHash() const
{
    // splitmix64-mix every field; positions are implicit in the running
    // state, so permuted programs hash differently.
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    auto mix = [&h](std::uint64_t v) {
        h += v + 0x9e3779b97f4a7c15ull;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
        h ^= h >> 31;
    };
    mix(static_cast<std::uint64_t>(programs_.size()));
    for (const Program &p : programs_) {
        mix(static_cast<std::uint64_t>(p.size()));
        for (const Instruction &i : p.code()) {
            mix(static_cast<std::uint64_t>(i.op));
            mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(i.dst)));
            mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(i.src)));
            mix(i.imm);
            mix(i.addr);
            mix(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(i.target)));
        }
    }
    std::vector<std::pair<Addr, Word>> inits = initials_;
    std::sort(inits.begin(), inits.end());
    for (const auto &[a, v] : inits) {
        mix(a);
        mix(v);
    }
    return h;
}

std::vector<Addr>
MultiProgram::touchedAddrs() const
{
    std::set<Addr> s;
    for (const auto &p : programs_) {
        for (Addr a : p.touchedAddrs())
            s.insert(a);
    }
    for (const auto &[a, v] : initials_)
        s.insert(a);
    return {s.begin(), s.end()};
}

std::string
MultiProgram::toString() const
{
    std::ostringstream oss;
    oss << "workload: " << name_ << '\n';
    for (int p = 0; p < numProcs(); ++p) {
        oss << "P" << p << ":\n" << programs_[p].toString();
    }
    return oss.str();
}

} // namespace wo
