#include "cpu/program.hh"

#include <algorithm>
#include <set>
#include <sstream>

namespace wo {

int
Program::maxRegister() const
{
    int m = -1;
    for (const auto &i : code_) {
        m = std::max(m, i.dst);
        m = std::max(m, i.src);
    }
    return m;
}

std::vector<Addr>
Program::touchedAddrs() const
{
    std::set<Addr> s;
    for (const auto &i : code_) {
        if (i.isMemOp())
            s.insert(i.addr);
    }
    return {s.begin(), s.end()};
}

std::string
Program::toString() const
{
    std::ostringstream oss;
    for (int pc = 0; pc < size(); ++pc)
        oss << "  " << pc << ": " << code_[pc].toString() << '\n';
    return oss.str();
}

ProcId
MultiProgram::addProgram(Program p)
{
    programs_.push_back(std::move(p));
    return static_cast<ProcId>(programs_.size()) - 1;
}

Word
MultiProgram::initialValue(Addr addr) const
{
    for (const auto &[a, v] : initials_) {
        if (a == addr)
            return v;
    }
    return 0;
}

void
MultiProgram::setInitial(Addr addr, Word value)
{
    for (auto &[a, v] : initials_) {
        if (a == addr) {
            v = value;
            return;
        }
    }
    initials_.emplace_back(addr, value);
}

int
MultiProgram::numRegisters() const
{
    int m = 0;
    for (const auto &p : programs_)
        m = std::max(m, p.maxRegister() + 1);
    return std::max(m, 1);
}

std::vector<Addr>
MultiProgram::touchedAddrs() const
{
    std::set<Addr> s;
    for (const auto &p : programs_) {
        for (Addr a : p.touchedAddrs())
            s.insert(a);
    }
    for (const auto &[a, v] : initials_)
        s.insert(a);
    return {s.begin(), s.end()};
}

std::string
MultiProgram::toString() const
{
    std::ostringstream oss;
    oss << "workload: " << name_ << '\n';
    for (int p = 0; p < numProcs(); ++p) {
        oss << "P" << p << ":\n" << programs_[p].toString();
    }
    return oss.str();
}

} // namespace wo
