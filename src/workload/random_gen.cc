#include "workload/random_gen.hh"

#include <string>

#include "cpu/program_builder.hh"
#include "sim/rng.hh"

namespace wo {

namespace {

/**
 * Address map:
 *   [0, numLocks)                           locks
 *   [numLocks, numLocks + L*locsPerLock)    shared data, partitioned
 *   then privateLocs per processor.
 */
Addr
sharedLocAddr(const RandomWorkloadConfig &cfg, int lock, int k)
{
    return static_cast<Addr>(cfg.numLocks + lock * cfg.locsPerLock + k);
}

Addr
privateLocAddr(const RandomWorkloadConfig &cfg, int proc, int k)
{
    return static_cast<Addr>(cfg.numLocks +
                             cfg.numLocks * cfg.locsPerLock +
                             proc * cfg.privateLocs + k);
}

void
emitPrivateOps(ProgramBuilder &b, const RandomWorkloadConfig &cfg,
               int proc, Rng &rng, Word &next_value)
{
    for (int i = 0; i < cfg.privateOpsBetween; ++i) {
        Addr a = privateLocAddr(cfg, proc,
                                static_cast<int>(rng.below(
                                    std::max(cfg.privateLocs, 1))));
        if (rng.chance(1, 2))
            b.store(a, next_value++);
        else
            b.load(static_cast<int>(rng.below(4)), a);
    }
}

MultiProgram
generate(const RandomWorkloadConfig &cfg, int unguarded)
{
    MultiProgram mp(unguarded > 0 ? "random-racy" : "random-drf0");
    Rng rng(cfg.seed);
    for (int p = 0; p < cfg.numProcs; ++p) {
        ProgramBuilder b;
        Rng prng = rng.split();
        Word next_value = static_cast<Word>(p + 1) * 100000;
        int label_seq = 0;
        for (int s = 0; s < cfg.sectionsPerProc; ++s) {
            emitPrivateOps(b, cfg, p, prng, next_value);

            int lock = static_cast<int>(prng.below(cfg.numLocks));
            Addr la = lockAddr(cfg, lock);
            std::string acq = "acq" + std::to_string(label_seq);
            std::string skip = "skip" + std::to_string(label_seq);
            ++label_seq;
            if (cfg.spinAcquire) {
                b.label(acq).tas(0, la).bne(0, 0, acq);
            } else {
                b.tas(0, la).bne(0, 0, skip);
            }
            for (int o = 0; o < cfg.opsPerSection; ++o) {
                Addr a = sharedLocAddr(
                    cfg, lock,
                    static_cast<int>(prng.below(
                        std::max(cfg.locsPerLock, 1))));
                if (prng.chance(1, 2))
                    b.store(a, next_value++);
                else
                    b.load(static_cast<int>(1 + prng.below(3)), a);
            }
            b.unset(la);
            if (!cfg.spinAcquire)
                b.label(skip);
        }
        // Deliberate races, if requested: raw accesses to shared data.
        for (int u = 0; u < unguarded; ++u) {
            int lock = static_cast<int>(prng.below(cfg.numLocks));
            Addr a = sharedLocAddr(
                cfg, lock,
                static_cast<int>(prng.below(
                    std::max(cfg.locsPerLock, 1))));
            if (prng.chance(1, 2))
                b.store(a, next_value++);
            else
                b.load(static_cast<int>(prng.below(4)), a);
        }
        b.halt();
        mp.addProgram(b.build());
    }
    return mp;
}

} // namespace

Addr
lockAddr(const RandomWorkloadConfig &cfg, int i)
{
    (void)cfg;
    return static_cast<Addr>(i);
}

MultiProgram
randomDrf0Program(const RandomWorkloadConfig &cfg)
{
    return generate(cfg, 0);
}

MultiProgram
randomRacyProgram(const RandomWorkloadConfig &cfg, int unguarded)
{
    return generate(cfg, unguarded);
}

} // namespace wo
