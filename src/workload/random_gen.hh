/**
 * @file
 * Seeded random workload generators.
 *
 * randomDrf0Program() builds lock-structured programs that obey DRF0 by
 * construction: every shared datum is guarded by exactly one lock, and
 * all access to it happens inside that lock's critical sections. These
 * drive the property tests (Definition 2: weak hardware must appear SC to
 * such programs) and the throughput benchmarks.
 *
 * randomRacyProgram() deliberately breaks the discipline with unguarded
 * shared accesses, for testing that the checkers and the relaxed systems
 * behave as the paper predicts.
 */

#ifndef WO_WORKLOAD_RANDOM_GEN_HH
#define WO_WORKLOAD_RANDOM_GEN_HH

#include <cstdint>

#include "cpu/program.hh"

namespace wo {

/** Shape of a generated workload. */
struct RandomWorkloadConfig
{
    int numProcs = 4;

    /** Locks; shared data locations are partitioned among them. */
    int numLocks = 2;

    /** Shared data locations per lock. */
    int locsPerLock = 3;

    /** Private (per-processor) scratch locations. */
    int privateLocs = 2;

    /** Critical sections per processor. */
    int sectionsPerProc = 3;

    /** Shared-data accesses inside each critical section. */
    int opsPerSection = 3;

    /** Private accesses between critical sections. */
    int privateOpsBetween = 2;

    /** Spin (TAS loop) on acquire; if false, a single TAS attempt guards
     * the section and losers skip it — keeps the interleaving space
     * enumerable for exhaustive checks. */
    bool spinAcquire = true;

    std::uint64_t seed = 1;
};

/** Address of lock @p i under @p cfg (also exposed for harnesses). */
Addr lockAddr(const RandomWorkloadConfig &cfg, int i);

/** Generate a DRF0-by-construction workload. */
MultiProgram randomDrf0Program(const RandomWorkloadConfig &cfg);

/** Generate a workload with deliberate data races: like the DRF0
 * generator, but each processor also performs @p unguarded accesses to
 * shared data outside any lock. */
MultiProgram randomRacyProgram(const RandomWorkloadConfig &cfg,
                               int unguarded = 2);

} // namespace wo

#endif // WO_WORKLOAD_RANDOM_GEN_HH
