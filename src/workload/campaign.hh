/**
 * @file
 * Campaign: run many independent simulation / verification jobs across
 * hardware threads with results bit-identical to a serial run.
 *
 * A campaign is a fan of numbered jobs — seed sweeps, config sweeps,
 * litmus enumerations, per-execution SC verifications, DRF0 checks. Each
 * job receives its index and a deterministic RNG seed derived from
 * (baseSeed, index) only, never from shared state or scheduling order;
 * results land in a vector slot per job and are merged in index order.
 * Running with N threads therefore produces exactly the bytes a
 * numThreads=1 run produces.
 */

#ifndef WO_WORKLOAD_CAMPAIGN_HH
#define WO_WORKLOAD_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/drf0_checker.hh"
#include "parallel/thread_pool.hh"
#include "system/system.hh"

namespace wo {

/** One unit of campaign work. */
struct CampaignJob
{
    /** Job number in [0, numJobs). */
    int index = 0;

    /** This job's private RNG seed: a splitmix64 mix of (baseSeed,
     * index). Equal for equal inputs on every platform and thread
     * count. */
    std::uint64_t seed = 0;
};

/** Deterministic per-job seed stream: seed = f(baseSeed, jobIndex). */
std::uint64_t campaignJobSeed(std::uint64_t baseSeed, int jobIndex);

/**
 * Resolve a thread count: @p requested if positive, else the WO_THREADS
 * environment variable if set to a positive integer, else one thread per
 * hardware thread. Always at least 1.
 */
int campaignThreads(int requested = 0);

/**
 * Strip a `--threads=N` (or `--threads N`) argument from argv, shifting
 * the remaining arguments down and updating argc.
 *
 * @return N, or 0 if the flag was absent (callers then fall back to
 *         campaignThreads(0)'s env/hardware resolution).
 */
int consumeThreadsFlag(int &argc, char **argv);

/**
 * Strip a `--seed=S` (or `--seed S`) argument from argv, shifting the
 * remaining arguments down and updating argc.
 *
 * @return S, or @p fallback if the flag was absent.
 */
std::uint64_t consumeSeedFlag(int &argc, char **argv,
                              std::uint64_t fallback = 1);

/**
 * Memoized sampled DRF0 verdicts, keyed by program content.
 *
 * Campaign-style workloads check the same compiled program repeatedly —
 * across corpus passes, policy sweeps, and duplicate litmus bodies that
 * differ only in name or clause. The verdict of checkProgramSampled()
 * depends only on (program content, schedule count, seed, step cap), so
 * one sampled check per distinct key suffices. Thread-safe; the sampled
 * check itself runs outside the lock.
 */
class Drf0Memo
{
  public:
    /**
     * checkProgramSampled() with memoization: the first call for a key
     * runs the sampled check, later calls return the stored report
     * (byte-identical — same witness, same races).
     */
    Drf0ProgramReport check(const MultiProgram &program, int numSchedules,
                            std::uint64_t seed,
                            int maxStepsPerExecution = 10000);

    /** Calls answered from the memo. */
    std::uint64_t hits() const;

    /** Calls that ran the sampled check. */
    std::uint64_t misses() const;

  private:
    /** (contentHash, numSchedules, seed, maxSteps). */
    using Key = std::tuple<std::uint64_t, int, std::uint64_t, int>;

    mutable std::mutex mu_;
    std::map<Key, Drf0ProgramReport> memo_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * A cache of constructed System instances keyed by campaign cell (by
 * convention "machine-name/policy"), so successive jobs of one cell pay
 * a reset instead of a rebuild.
 *
 * acquire() hands back the cached instance — reset under the job's
 * config and reloaded with the job's program — when it is compatible
 * (same topology and processor count; see System::compatibleWith).
 * Anything else replaces the cell's entry with a fresh construction, so
 * a miss never costs more than not pooling at all.
 *
 * A pool is single-threaded by design: campaign workers each use their
 * own via workerSystemPool(). Determinism is unaffected — a reset
 * System replays a job bit-identically to a freshly built one — so
 * pooled parallel campaigns still match serial fresh-construction runs.
 */
class SystemPool
{
  public:
    /**
     * A System ready to run(@p program) under @p cfg: the cached
     * instance for @p key if compatible, else a fresh replacement.
     * The reference is owned by the pool and stays valid until the
     * next acquire() for the same key or clear().
     */
    System &acquire(const std::string &key, const MultiProgram &program,
                    const SystemConfig &cfg);

    /** Jobs served by resetting a cached instance. */
    std::uint64_t reuses() const { return reuses_; }

    /** Jobs that constructed (first touch or incompatible). */
    std::uint64_t builds() const { return builds_; }

    /** Drop every cached instance and zero the counters. */
    void
    clear()
    {
        cells_.clear();
        reuses_ = 0;
        builds_ = 0;
    }

  private:
    std::map<std::string, std::unique_ptr<System>> cells_;
    std::uint64_t reuses_ = 0;
    std::uint64_t builds_ = 0;
};

/**
 * The calling thread's private SystemPool (thread_local, created on
 * first use). Campaign job lambdas run on pool worker threads that live
 * as long as the Campaign, so instances cached here survive from job to
 * job and across map() calls without any cross-thread sharing.
 */
SystemPool &workerSystemPool();

/** How a campaign runs. */
struct CampaignConfig
{
    /** Worker threads; 0 resolves via campaignThreads(). */
    int numThreads = 0;

    /** Base of the per-job seed stream. */
    std::uint64_t baseSeed = 1;
};

/**
 * A reusable fan-out engine over one thread pool.
 *
 * map() is the primitive: run fn over numJobs jobs, return the results
 * in job order. reduce() folds map()'s output left-to-right, so merged
 * aggregates are also independent of the thread count.
 */
class Campaign
{
  public:
    explicit Campaign(CampaignConfig cfg = {})
        : cfg_(cfg), pool_(campaignThreads(cfg.numThreads))
    {}

    int numThreads() const { return pool_.numThreads(); }
    std::uint64_t baseSeed() const { return cfg_.baseSeed; }

    /** The underlying pool (e.g. for root-split SC verification). */
    ThreadPool &pool() { return pool_; }

    /** Run fn(job) for each job, results in job-index order. */
    template <class Result>
    std::vector<Result>
    map(int numJobs, const std::function<Result(const CampaignJob &)> &fn)
    {
        std::vector<Result> out(static_cast<std::size_t>(numJobs));
        parallelFor(pool_, static_cast<std::size_t>(numJobs),
                    [&](std::size_t i) {
                        CampaignJob job;
                        job.index = static_cast<int>(i);
                        job.seed = campaignJobSeed(cfg_.baseSeed,
                                                   job.index);
                        out[i] = fn(job);
                    });
        return out;
    }

    /** map() then fold in index order: order-stable aggregation. */
    template <class Result, class Acc>
    Acc
    reduce(int numJobs,
           const std::function<Result(const CampaignJob &)> &fn, Acc acc,
           const std::function<void(Acc &, const Result &)> &merge)
    {
        for (const Result &r : map<Result>(numJobs, fn))
            merge(acc, r);
        return acc;
    }

  private:
    CampaignConfig cfg_;
    ThreadPool pool_;
};

} // namespace wo

#endif // WO_WORKLOAD_CAMPAIGN_HH
