/**
 * @file
 * The executions of Figure 2 of the paper: an example and a
 * counter-example of DRF0, expressed as ExecutionTraces on the idealized
 * architecture.
 *
 * Figure 2(a): every conflicting pair of accesses is ordered by the
 * happens-before relation, through chains of synchronization operations
 * (possibly spanning several processors and several sync locations).
 *
 * Figure 2(b): P0's data accesses conflict with P1's write but no
 * synchronization orders them; similarly two other processors' writes to
 * a common location conflict unordered.
 */

#ifndef WO_WORKLOAD_FIGURES_HH
#define WO_WORKLOAD_FIGURES_HH

#include "core/trace.hh"

namespace wo {

/** The DRF0-conformant execution of Figure 2(a) (6 processors; data
 * locations x, y, z; sync locations a, b, c). */
ExecutionTrace figure2aTrace();

/** The DRF0-violating execution of Figure 2(b) (5 processors). */
ExecutionTrace figure2bTrace();

/** Address names used by the Figure 2 traces (for reporting). */
namespace fig2 {
inline constexpr Addr kX = 0;
inline constexpr Addr kY = 1;
inline constexpr Addr kZ = 2;
inline constexpr Addr kA = 10;
inline constexpr Addr kB = 11;
inline constexpr Addr kC = 12;
} // namespace fig2

} // namespace wo

#endif // WO_WORKLOAD_FIGURES_HH
