#include "workload/campaign.hh"

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace wo {

std::uint64_t
campaignJobSeed(std::uint64_t baseSeed, int jobIndex)
{
    // splitmix64 finalizer over (baseSeed, index). Two rounds keep
    // adjacent indices' streams statistically independent.
    std::uint64_t z = baseSeed +
                      0x9e3779b97f4a7c15ull *
                          (static_cast<std::uint64_t>(jobIndex) + 1);
    for (int round = 0; round < 2; ++round) {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
    }
    return z;
}

int
campaignThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("WO_THREADS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

int
consumeThreadsFlag(int &argc, char **argv)
{
    int threads = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            threads = std::atoi(arg + 10);
            continue;
        }
        if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
            threads = std::atoi(argv[i + 1]);
            ++i;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return threads > 0 ? threads : 0;
}

System &
SystemPool::acquire(const std::string &key, const MultiProgram &program,
                    const SystemConfig &cfg)
{
    auto it = cells_.find(key);
    if (it != cells_.end() && it->second->compatibleWith(program, cfg)) {
        ++reuses_;
        System &sys = *it->second;
        sys.reset(cfg);
        sys.loadProgram(program);
        return sys;
    }
    ++builds_;
    auto sys = std::make_unique<System>(program, cfg);
    System &ref = *sys;
    cells_[key] = std::move(sys);
    return ref;
}

SystemPool &
workerSystemPool()
{
    thread_local SystemPool pool;
    return pool;
}

Drf0ProgramReport
Drf0Memo::check(const MultiProgram &program, int numSchedules,
                std::uint64_t seed, int maxStepsPerExecution)
{
    Key key{program.contentHash(), numSchedules, seed,
            maxStepsPerExecution};
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = memo_.find(key);
        if (it != memo_.end()) {
            ++hits_;
            return it->second;
        }
    }
    // Compute outside the lock; a concurrent duplicate of the same key
    // computes the identical report, so first-insert-wins is harmless.
    Drf0ProgramReport report = checkProgramSampled(
        program, numSchedules, seed, maxStepsPerExecution);
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    auto [it, inserted] = memo_.emplace(key, std::move(report));
    return it->second;
}

std::uint64_t
Drf0Memo::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
Drf0Memo::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::uint64_t
consumeSeedFlag(int &argc, char **argv, std::uint64_t fallback)
{
    std::uint64_t seed = fallback;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--seed=", 7) == 0) {
            seed = std::strtoull(arg + 7, nullptr, 10);
            continue;
        }
        if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[i + 1], nullptr, 10);
            ++i;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return seed;
}

} // namespace wo
