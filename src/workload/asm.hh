/**
 * @file
 * A tiny assembly front end for the simulator's ISA, so workloads can be
 * written as text files instead of C++.
 *
 * Grammar (line oriented; '#'-to-end-of-line and ';'-to-end-of-line are
 * comments... '#' only when not introducing an immediate):
 *
 *   program   := { section | init }
 *   section   := "P" num ":" { line }
 *   init      := "init" "[" num "]" "=" num
 *   line      := [ label ":" ] [ insn ]
 *   insn      := "movi"  reg "," imm
 *              | "addi"  reg "," reg "," imm
 *              | "load"  reg "," addr
 *              | "store" addr "," ( reg | imm )
 *              | "test"  reg "," addr            ; read-only sync
 *              | "unset" addr "," ( reg | imm )  ; write-only sync
 *              | "tas"   reg "," addr [ "," imm ]; read-write sync
 *              | "beq"   reg "," imm "," ident
 *              | "bne"   reg "," imm "," ident
 *              | "fence" | "nop" | "halt"
 *   reg       := "r" num
 *   addr      := "[" num "]"
 *   imm       := [ "#" ] num
 *
 * Example:
 *
 *   P0:
 *       store [0], #42
 *       unset [2], #1
 *   P1:
 *   spin:
 *       test r0, [2]
 *       beq r0, #0, spin
 *       load r1, [0]
 *
 * Parse errors throw AsmError with the 1-based line number.
 */

#ifndef WO_WORKLOAD_ASM_HH
#define WO_WORKLOAD_ASM_HH

#include <stdexcept>
#include <string>

#include "cpu/program.hh"

namespace wo {

/** Parse failure, carrying the offending line. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(int line, const std::string &what)
        : std::runtime_error("line " + std::to_string(line) + ": " + what),
          line_(line)
    {}

    /** 1-based source line of the error. */
    int line() const { return line_; }

  private:
    int line_;
};

/** Assemble a complete multiprocessor workload from source text. */
MultiProgram assemble(const std::string &source,
                      const std::string &name = "asm");

/** Assemble from a file on disk. */
MultiProgram assembleFile(const std::string &path);

/** Render a workload back to assembly text (labels synthesized). */
std::string disassemble(const MultiProgram &mp);

} // namespace wo

#endif // WO_WORKLOAD_ASM_HH
