#include "workload/figures.hh"

namespace wo {

namespace {

Access
mk(ProcId proc, int po, AccessKind kind, Addr addr, Tick commit)
{
    Access a;
    a.proc = proc;
    a.poIndex = po;
    a.kind = kind;
    a.addr = addr;
    a.commitTick = commit;
    a.gpTick = commit;
    return a;
}

} // namespace

ExecutionTrace
figure2aTrace()
{
    using namespace fig2;
    // Time flows with the commit ticks; every conflicting access pair is
    // hb-ordered through synchronization chains:
    //   P0: W(x) S(a)                 -- publishes x under a
    //   P1:        S(a) R(x) W(y) S(b)  -- consumes x, publishes y under b
    //   P2:                  S(b) R(y) S(c)
    //   P3:                            S(c) W(x)   -- x write after chain
    //   P4: W(z) S(b)? no — keep z on its own sync:
    //   P4: W(z) S(c)                 -- publishes z under c (before P5)
    //   P5:        S(c) R(z)
    // (Equivalent in structure to the paper's figure: multi-hop chains,
    // several sync locations, all conflicts ordered.)
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, kX, 0));  // W(x) by P0
    t.add(mk(0, 1, AccessKind::SyncWrite, kA, 1));  // S(a) by P0
    t.add(mk(1, 0, AccessKind::SyncRmw, kA, 2));    // S(a) by P1
    t.add(mk(1, 1, AccessKind::DataRead, kX, 3));   // R(x) by P1
    t.add(mk(1, 2, AccessKind::DataWrite, kY, 4));  // W(y) by P1
    t.add(mk(1, 3, AccessKind::SyncWrite, kB, 5));  // S(b) by P1
    t.add(mk(2, 0, AccessKind::SyncRmw, kB, 6));    // S(b) by P2
    t.add(mk(2, 1, AccessKind::DataRead, kY, 7));   // R(y) by P2
    t.add(mk(4, 0, AccessKind::DataWrite, kZ, 8));  // W(z) by P4
    t.add(mk(4, 1, AccessKind::SyncWrite, kC, 9));  // S(c) by P4
    t.add(mk(2, 2, AccessKind::SyncRmw, kC, 10));   // S(c) by P2
    t.add(mk(3, 0, AccessKind::SyncRmw, kC, 11));   // S(c) by P3
    t.add(mk(3, 1, AccessKind::DataWrite, kX, 12)); // W(x) by P3
    t.add(mk(5, 0, AccessKind::SyncRmw, kC, 13));   // S(c) by P5
    t.add(mk(5, 1, AccessKind::DataRead, kZ, 14));  // R(z) by P5
    return t;
}

ExecutionTrace
figure2bTrace()
{
    using namespace fig2;
    // The counter-example: P0's accesses to x conflict with P1's write
    // of x but no synchronization intervenes; P2's and P4's writes of y
    // conflict unordered as well (P2 syncs on b, P4 does not).
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataRead, kX, 0));   // R(x) by P0
    t.add(mk(0, 1, AccessKind::DataWrite, kX, 1));  // W(x) by P0
    t.add(mk(1, 0, AccessKind::DataWrite, kX, 2));  // W(x) by P1  (races)
    t.add(mk(2, 0, AccessKind::DataWrite, kY, 3));  // W(y) by P2
    t.add(mk(2, 1, AccessKind::SyncWrite, kB, 4));  // S(b) by P2
    t.add(mk(3, 0, AccessKind::SyncRmw, kB, 5));    // S(b) by P3
    t.add(mk(3, 1, AccessKind::DataRead, kY, 6));   // R(y) by P3 (ordered)
    t.add(mk(4, 0, AccessKind::DataWrite, kY, 7));  // W(y) by P4  (races)
    return t;
}

} // namespace wo
