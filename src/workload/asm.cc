#include "workload/asm.hh"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "cpu/program_builder.hh"

namespace wo {

namespace {

/** One tokenized source line. */
struct Tokens
{
    std::vector<std::string> items;
    int line;
};

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/**
 * Tokenize one line: identifiers/numbers, and the punctuation
 * , : [ ] # = as single-character tokens. ';' starts a comment; '#'
 * starts a comment only when it is not immediately followed by a digit
 * or '-' (so "#42" stays an immediate marker).
 */
std::vector<std::string>
tokenize(const std::string &line, int lineno)
{
    std::vector<std::string> toks;
    std::size_t i = 0;
    while (i < line.size()) {
        char c = line[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == ';')
            break;
        if (c == '#') {
            bool imm = i + 1 < line.size() &&
                       (std::isdigit(static_cast<unsigned char>(
                            line[i + 1])) ||
                        line[i + 1] == '-');
            if (!imm)
                break; // comment
            toks.emplace_back("#");
            ++i;
            continue;
        }
        if (c == ',' || c == ':' || c == '[' || c == ']' || c == '=') {
            toks.emplace_back(1, c);
            ++i;
            continue;
        }
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-') {
            std::size_t j = i;
            while (j < line.size() &&
                   (std::isalnum(static_cast<unsigned char>(line[j])) ||
                    line[j] == '_' || line[j] == '-')) {
                ++j;
            }
            toks.push_back(line.substr(i, j - i));
            i = j;
            continue;
        }
        throw AsmError(lineno,
                       std::string("unexpected character '") + c + "'");
    }
    return toks;
}

/** Cursor over one line's tokens. */
class Cur
{
  public:
    Cur(const Tokens &t) : t_(t) {}

    bool done() const { return pos_ >= t_.items.size(); }

    const std::string &
    next(const char *what)
    {
        if (done())
            throw AsmError(t_.line, std::string("expected ") + what);
        return t_.items[pos_++];
    }

    void
    expect(const std::string &tok)
    {
        const std::string &got = next(tok.c_str());
        if (got != tok)
            throw AsmError(t_.line, "expected '" + tok + "', got '" +
                                        got + "'");
    }

    bool
    accept(const std::string &tok)
    {
        if (!done() && t_.items[pos_] == tok) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::uint64_t
    number(const char *what)
    {
        const std::string &s = next(what);
        bool neg = !s.empty() && s[0] == '-';
        std::size_t start = neg ? 1 : 0;
        if (start >= s.size())
            throw AsmError(t_.line, std::string("bad number for ") + what);
        std::uint64_t v = 0;
        for (std::size_t i = start; i < s.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(s[i])))
                throw AsmError(t_.line, "bad number '" + s + "'");
            v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
        }
        return neg ? static_cast<std::uint64_t>(-static_cast<long long>(
                         static_cast<long long>(v)))
                   : v;
    }

    int
    reg()
    {
        const std::string &s = next("register");
        if (s.size() < 2 || (s[0] != 'r' && s[0] != 'R'))
            throw AsmError(t_.line, "expected register, got '" + s + "'");
        int v = 0;
        for (std::size_t i = 1; i < s.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(s[i])))
                throw AsmError(t_.line, "bad register '" + s + "'");
            v = v * 10 + (s[i] - '0');
        }
        return v;
    }

    Addr
    addr()
    {
        expect("[");
        Addr a = static_cast<Addr>(number("address"));
        expect("]");
        return a;
    }

    Word
    imm()
    {
        accept("#");
        return number("immediate");
    }

    int line() const { return t_.line; }

  private:
    const Tokens &t_;
    std::size_t pos_ = 0;
};

bool
isRegToken(const std::string &s)
{
    return s.size() >= 2 && (s[0] == 'r' || s[0] == 'R') &&
           std::isdigit(static_cast<unsigned char>(s[1]));
}

} // namespace

MultiProgram
assemble(const std::string &source, const std::string &name)
{
    MultiProgram mp(name);
    std::istringstream in(source);
    std::string raw;
    int lineno = 0;

    // Collect per-processor token lines, then build each with labels.
    std::map<int, std::vector<Tokens>> sections;
    std::vector<std::pair<Addr, Word>> inits;
    int current = -1;

    while (std::getline(in, raw)) {
        ++lineno;
        std::vector<std::string> toks = tokenize(raw, lineno);
        if (toks.empty())
            continue;
        std::string head = lower(toks[0]);
        // Section header: P<n> :
        if (head.size() >= 2 && head[0] == 'p' &&
            std::isdigit(static_cast<unsigned char>(head[1])) &&
            toks.size() >= 2 && toks[1] == ":") {
            current = std::stoi(head.substr(1));
            if (current < 0 || toks.size() != 2)
                throw AsmError(lineno, "bad section header");
            sections[current]; // create
            continue;
        }
        if (head == "init") {
            Tokens t{toks, lineno};
            Cur c(t);
            c.next("init");
            Addr a = c.addr();
            c.expect("=");
            Word v = c.imm();
            if (!c.done())
                throw AsmError(lineno, "trailing tokens after init");
            inits.emplace_back(a, v);
            continue;
        }
        if (current < 0)
            throw AsmError(lineno, "instruction outside any P<n> section");
        sections[current].push_back(Tokens{toks, lineno});
    }

    int max_proc = sections.empty() ? -1 : sections.rbegin()->first;
    for (int p = 0; p <= max_proc; ++p) {
        ProgramBuilder b;
        for (const Tokens &t : sections[p]) {
            Cur c(t);
            std::string first = c.next("mnemonic or label");
            // Label?
            if (c.accept(":")) {
                b.label(first);
                if (c.done())
                    continue;
                first = c.next("mnemonic");
            }
            std::string op = lower(first);
            if (op == "movi") {
                int r = c.reg();
                c.expect(",");
                b.movi(r, c.imm());
            } else if (op == "addi") {
                int rd = c.reg();
                c.expect(",");
                int rs = c.reg();
                c.expect(",");
                b.addi(rd, rs, c.imm());
            } else if (op == "load") {
                int r = c.reg();
                c.expect(",");
                b.load(r, c.addr());
            } else if (op == "test") {
                int r = c.reg();
                c.expect(",");
                b.test(r, c.addr());
            } else if (op == "store" || op == "unset") {
                Addr a = c.addr();
                bool has_operand = op == "store";
                Word iv = 0;
                int rs = -1;
                if (c.accept(",")) {
                    has_operand = true;
                    // register or immediate?
                    if (!c.done()) {
                        // Peek by trying register syntax.
                        // Copy-free peek: accept '#' means immediate.
                        if (c.accept("#")) {
                            iv = c.number("immediate");
                        } else {
                            const std::string &s = c.next("operand");
                            if (isRegToken(s)) {
                                rs = std::stoi(s.substr(1));
                            } else {
                                // bare number immediate
                                Tokens tmp{{s}, t.line};
                                Cur cc(tmp);
                                iv = cc.imm();
                            }
                        }
                    }
                } else if (op == "store") {
                    throw AsmError(t.line, "store needs a value operand");
                }
                (void)has_operand;
                if (op == "store") {
                    if (rs >= 0)
                        b.storeReg(a, rs);
                    else
                        b.store(a, iv);
                } else {
                    if (rs >= 0)
                        b.unsetReg(a, rs);
                    else
                        b.unset(a, iv);
                }
            } else if (op == "tas") {
                int r = c.reg();
                c.expect(",");
                Addr a = c.addr();
                Word wv = 1;
                if (c.accept(","))
                    wv = c.imm();
                b.tas(r, a, wv);
            } else if (op == "beq" || op == "bne") {
                int r = c.reg();
                c.expect(",");
                Word iv = c.imm();
                c.expect(",");
                std::string target = c.next("branch target");
                if (op == "beq")
                    b.beq(r, iv, target);
                else
                    b.bne(r, iv, target);
            } else if (op == "fence") {
                b.fence();
            } else if (op == "nop") {
                b.nop();
            } else if (op == "halt") {
                b.halt();
            } else {
                throw AsmError(t.line, "unknown mnemonic '" + op + "'");
            }
            if (!c.done())
                throw AsmError(t.line, "trailing tokens");
        }
        try {
            mp.addProgram(b.build());
        } catch (const std::invalid_argument &e) {
            throw AsmError(0, std::string("P") + std::to_string(p) + ": " +
                                  e.what());
        }
    }
    for (const auto &[a, v] : inits)
        mp.setInitial(a, v);
    return mp;
}

MultiProgram
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return assemble(buf.str(), path);
}

std::string
disassemble(const MultiProgram &mp)
{
    std::ostringstream oss;
    for (const auto &[a, v] : mp.initials())
        oss << "init [" << a << "] = " << v << "\n";
    for (int p = 0; p < mp.numProcs(); ++p) {
        oss << "P" << p << ":\n";
        const Program &prog = mp.program(p);
        // Synthesize labels for branch targets.
        std::map<int, std::string> labels;
        for (const auto &insn : prog.code()) {
            if ((insn.op == Opcode::Beq || insn.op == Opcode::Bne) &&
                insn.target >= 0 && !labels.count(insn.target)) {
                labels[insn.target] =
                    "L" + std::to_string(labels.size());
            }
        }
        for (int pc = 0; pc < prog.size(); ++pc) {
            auto lit = labels.find(pc);
            if (lit != labels.end())
                oss << lit->second << ":\n";
            const Instruction &i = prog.at(pc);
            oss << "    ";
            switch (i.op) {
              case Opcode::Load:
                oss << "load r" << i.dst << ", [" << i.addr << "]";
                break;
              case Opcode::SyncRead:
                oss << "test r" << i.dst << ", [" << i.addr << "]";
                break;
              case Opcode::Store:
              case Opcode::SyncWrite:
                oss << (i.op == Opcode::Store ? "store [" : "unset [")
                    << i.addr << "], ";
                if (i.src >= 0)
                    oss << "r" << i.src;
                else
                    oss << "#" << i.imm;
                break;
              case Opcode::TestAndSet:
                oss << "tas r" << i.dst << ", [" << i.addr << "], #"
                    << i.imm;
                break;
              case Opcode::Movi:
                oss << "movi r" << i.dst << ", #" << i.imm;
                break;
              case Opcode::Addi:
                oss << "addi r" << i.dst << ", r" << i.src << ", #"
                    << i.imm;
                break;
              case Opcode::Beq:
              case Opcode::Bne:
                oss << (i.op == Opcode::Beq ? "beq r" : "bne r") << i.src
                    << ", #" << i.imm << ", " << labels.at(i.target);
                break;
              case Opcode::Fence:
                oss << "fence";
                break;
              case Opcode::Nop:
                oss << "nop";
                break;
              case Opcode::Halt:
                oss << "halt";
                break;
            }
            oss << "\n";
        }
    }
    return oss.str();
}

} // namespace wo
