/**
 * @file
 * Litmus-test library: the programs the paper reasons about.
 *
 * Address map convention used by all litmus builders: data locations
 * first, then synchronization locations; helpers return the addresses
 * they used so harnesses can inspect results.
 */

#ifndef WO_WORKLOAD_LITMUS_HH
#define WO_WORKLOAD_LITMUS_HH

#include "core/trace.hh"
#include "cpu/program.hh"

namespace wo {

/**
 * Figure 1: the Dekker-style litmus.
 *
 *   P0: X = 1; r0 = Y        P1: Y = 1; r0 = X
 *
 * Sequential consistency forbids r0 == 0 on both processors.
 */
MultiProgram dekkerLitmus();

/** True if a Dekker result is the SC-forbidden both-zero outcome. */
bool dekkerViolatesSc(const RunResult &r);

/**
 * Racy message passing (NOT DRF0): P0 writes data then a plain flag; P1
 * spins on the flag with ordinary reads, then reads data. The paper's
 * Section 6 "spinning on a barrier count with a data read" example.
 */
MultiProgram racyMessagePassing(int spin_bound = 0);

/**
 * DRF0 message passing: P0 writes data then Unsets a sync flag; P1 spins
 * with Test (read-only sync), then reads data.
 */
MultiProgram syncMessagePassing();

/**
 * The Figure 3 scenario. P0: W(x); other work; Unset(s); more work.
 * P1: TestAndSet(s) until acquired; other work; R(x).
 *
 * @param work_nops cycles of "other work" between the interesting ops.
 */
MultiProgram figure3Scenario(int work_nops = 3);

/**
 * N processors each increment a shared counter @p rounds times inside a
 * test-and-test&set lock (Test spin, then TAS; Section 6's example of
 * read-only synchronization in anger).
 */
MultiProgram tttasLockCounter(int num_procs, int rounds);

/**
 * Same workload with a pure TAS spin lock (no read-only Test), which the
 * DRF0 example implementation serializes heavily.
 */
MultiProgram tasLockCounter(int num_procs, int rounds);

/**
 * A sense-reversing style barrier, implemented with DRF0 primitives:
 * each of N processors TAS-increments a barrier count, and the last one
 * Unsets a release flag all others spin on with Test.
 * Each processor writes private data before the barrier and reads a
 * neighbour's data after it (race-free only if the barrier works).
 */
MultiProgram syncBarrier(int num_procs);

/**
 * Independent reads of independent writes (IRIW): P0 writes X, P1 writes
 * Y, P2 reads X then Y, P3 reads Y then X. SC forbids the two readers
 * observing the writes in opposite orders.
 */
MultiProgram iriwLitmus();

/** True if an IRIW result shows the SC-forbidden opposite orders. */
bool iriwViolatesSc(const RunResult &r);

/**
 * Peterson's 2-process mutual-exclusion algorithm, with a non-atomic
 * shared-counter increment in the critical section.
 *
 * @param labeled false: flags and turn are ordinary data accesses — the
 *        classic algorithm as written for sequentially consistent
 *        memory. It is NOT data-race-free, so weakly ordered hardware
 *        promises nothing: increments can be lost.
 *        true: every flag/turn access uses a synchronization operation
 *        (Test/Unset), making the program DRF0 — it then works on every
 *        conforming implementation.
 * @param rounds critical-section entries per processor.
 */
MultiProgram petersonCounter(bool labeled, int rounds = 1);

/** Expected final counter value for petersonCounter. */
Word petersonExpectedCount(int rounds);

/** Addresses used by the litmus builders. */
namespace litmus {
inline constexpr Addr kX = 0;
inline constexpr Addr kY = 1;
inline constexpr Addr kData = 0;
inline constexpr Addr kFlag = 1;
inline constexpr Addr kSync = 2;
inline constexpr Addr kCounter = 0;
inline constexpr Addr kLock = 1;
inline constexpr Addr kBarrierCount = 100;
inline constexpr Addr kBarrierLock = 101;
inline constexpr Addr kBarrierRelease = 102;
inline constexpr Addr kPetersonFlag0 = 200;
inline constexpr Addr kPetersonFlag1 = 201;
inline constexpr Addr kPetersonTurn = 202;
inline constexpr Addr kPetersonCounter = 203;
} // namespace litmus

} // namespace wo

#endif // WO_WORKLOAD_LITMUS_HH
