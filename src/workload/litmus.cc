#include "workload/litmus.hh"

#include "cpu/program_builder.hh"

namespace wo {

using namespace litmus;

MultiProgram
dekkerLitmus()
{
    MultiProgram mp("dekker");
    ProgramBuilder p0, p1;
    p0.store(kX, 1).load(0, kY).halt();
    p1.store(kY, 1).load(0, kX).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    return mp;
}

bool
dekkerViolatesSc(const RunResult &r)
{
    return r.registers.size() >= 2 && r.registers[0][0] == 0 &&
           r.registers[1][0] == 0;
}

MultiProgram
racyMessagePassing(int spin_bound)
{
    MultiProgram mp("racy-mp");
    ProgramBuilder p0, p1;
    p0.store(kData, 42).store(kFlag, 1).halt();
    if (spin_bound <= 0) {
        // Unbounded data-read spin (Section 6's barrier-count example).
        p1.label("spin").load(0, kFlag).beq(0, 0, "spin").load(1, kData)
            .halt();
    } else {
        // Bounded spin: give up after spin_bound tries (r2 counts).
        p1.movi(2, 0)
            .label("spin")
            .load(0, kFlag)
            .bne(0, 0, "go")
            .addi(2, 2, 1)
            .bne(2, static_cast<Word>(spin_bound), "spin")
            .label("go")
            .load(1, kData)
            .halt();
    }
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    return mp;
}

MultiProgram
syncMessagePassing()
{
    MultiProgram mp("sync-mp");
    ProgramBuilder p0, p1;
    p0.store(kData, 42).unset(kSync, 1).halt();
    p1.label("spin").test(0, kSync).beq(0, 0, "spin").load(1, kData)
        .halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    return mp;
}

MultiProgram
figure3Scenario(int work_nops)
{
    MultiProgram mp("figure3");
    ProgramBuilder p0, p1;
    // s starts 0 ("held by P0"); Unset(s, 1) releases; P1's TAS writes 0,
    // acquiring when it reads back 1.
    p0.store(kX, 1).nop(work_nops).unset(kSync, 1).nop(work_nops).halt();
    p1.label("spin")
        .tas(0, kSync, 0)
        .beq(0, 0, "spin")
        .nop(work_nops)
        .load(1, kX)
        .halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    return mp;
}

namespace {

/** Shared body: N procs increment kCounter under a lock @p rounds
 * times. */
MultiProgram
lockCounter(const std::string &name, int num_procs, int rounds,
            bool test_first)
{
    MultiProgram mp(name);
    for (int p = 0; p < num_procs; ++p) {
        ProgramBuilder b;
        b.movi(2, 0); // round counter
        b.label("round");
        b.label("acq");
        if (test_first) {
            // Test-and-TestAndSet: spin with a read-only sync first.
            b.label("testspin")
                .test(0, kLock)
                .bne(0, 0, "testspin");
        }
        b.tas(0, kLock).bne(0, 0, "acq");
        // Critical section: increment the shared counter.
        b.load(1, kCounter).addi(1, 1, 1).storeReg(kCounter, 1);
        b.unset(kLock);
        b.addi(2, 2, 1).bne(2, static_cast<Word>(rounds), "round");
        b.halt();
        mp.addProgram(b.build());
    }
    return mp;
}

} // namespace

MultiProgram
tttasLockCounter(int num_procs, int rounds)
{
    return lockCounter("tttas-counter", num_procs, rounds, true);
}

MultiProgram
tasLockCounter(int num_procs, int rounds)
{
    return lockCounter("tas-counter", num_procs, rounds, false);
}

MultiProgram
syncBarrier(int num_procs)
{
    MultiProgram mp("sync-barrier");
    for (int p = 0; p < num_procs; ++p) {
        ProgramBuilder b;
        Addr mine = 10 + static_cast<Addr>(p);
        Addr neighbour = 10 + static_cast<Addr>((p + 1) % num_procs);
        // Phase 1: publish private datum.
        b.store(mine, static_cast<Word>(1000 + p));
        // Barrier: lock-protected increment of the count.
        b.label("acq").tas(0, kBarrierLock).bne(0, 0, "acq");
        b.load(1, kBarrierCount).addi(1, 1, 1)
            .unsetReg(kBarrierCount, 1); // sync write: count is a sync var
        b.unset(kBarrierLock);
        // Last arriver releases everyone.
        b.bne(1, static_cast<Word>(num_procs), "wait")
            .unset(kBarrierRelease, 1);
        b.label("wait")
            .test(2, kBarrierRelease)
            .beq(2, 0, "wait");
        // Phase 2: read the neighbour's datum.
        b.load(3, neighbour).halt();
        mp.addProgram(b.build());
    }
    return mp;
}

MultiProgram
iriwLitmus()
{
    MultiProgram mp("iriw");
    ProgramBuilder p0, p1, p2, p3;
    p0.store(kX, 1).halt();
    p1.store(kY, 1).halt();
    p2.load(0, kX).load(1, kY).halt();
    p3.load(0, kY).load(1, kX).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    mp.addProgram(p2.build());
    mp.addProgram(p3.build());
    return mp;
}

MultiProgram
petersonCounter(bool labeled, int rounds)
{
    using namespace litmus;
    MultiProgram mp(labeled ? "peterson-sync" : "peterson-data");
    for (int i = 0; i < 2; ++i) {
        Addr my_flag = i == 0 ? kPetersonFlag0 : kPetersonFlag1;
        Addr other_flag = i == 0 ? kPetersonFlag1 : kPetersonFlag0;
        Word other = static_cast<Word>(1 - i);
        ProgramBuilder b;
        b.movi(3, 0); // round counter
        b.label("round");
        // Entry protocol: flag[i] = 1; turn = other;
        if (labeled) {
            b.unset(my_flag, 1).unset(kPetersonTurn, other);
        } else {
            b.store(my_flag, 1).store(kPetersonTurn, other);
        }
        // Spin while (flag[other] && turn == other).
        b.label("spin");
        if (labeled)
            b.test(0, other_flag);
        else
            b.load(0, other_flag);
        b.beq(0, 0, "enter");
        if (labeled)
            b.test(1, kPetersonTurn);
        else
            b.load(1, kPetersonTurn);
        b.beq(1, other, "spin");
        b.label("enter");
        // Critical section: non-atomic increment.
        b.load(2, kPetersonCounter)
            .addi(2, 2, 1)
            .storeReg(kPetersonCounter, 2);
        // Exit protocol: flag[i] = 0.
        if (labeled)
            b.unset(my_flag, 0);
        else
            b.store(my_flag, 0);
        b.addi(3, 3, 1).bne(3, static_cast<Word>(rounds), "round");
        b.halt();
        mp.addProgram(b.build());
    }
    return mp;
}

Word
petersonExpectedCount(int rounds)
{
    return static_cast<Word>(2 * rounds);
}

bool
iriwViolatesSc(const RunResult &r)
{
    // P2 saw X then not-yet Y; P3 saw Y then not-yet X.
    return r.registers.size() >= 4 && r.registers[2][0] == 1 &&
           r.registers[2][1] == 0 && r.registers[3][0] == 1 &&
           r.registers[3][1] == 0;
}

} // namespace wo
