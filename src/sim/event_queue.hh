/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Every timing component of the simulator (caches, directories,
 * interconnects, processors) schedules callbacks on one EventQueue. Events
 * scheduled for the same tick fire in the order they were scheduled, which
 * makes whole-system runs bit-for-bit reproducible for a given seed.
 *
 * Event records are pooled: callbacks are constructed into fixed-size
 * slab-allocated records (small-buffer storage for the callable, heap
 * fallback only for oversized captures) and recycled through a free list,
 * so the steady-state schedule/fire path performs no per-event
 * allocation. The pending set is a binary heap of (tick, seq, record*)
 * triples; ordering is identical to the historical
 * std::priority_queue<std::function> kernel (see
 * sim/legacy_event_queue.hh, kept as the differential oracle), so runs
 * are bit-for-bit identical to it.
 */

#ifndef WO_SIM_EVENT_QUEUE_HH
#define WO_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace wo {

/**
 * A time-ordered queue of callbacks driving the simulation.
 *
 * The queue is strictly deterministic: ties in scheduled time are broken by
 * insertion sequence number.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * Scheduling in the past is a caller bug: throws std::logic_error
     * (in every build type — a silently late event would desynchronize
     * the simulation irrecoverably).
     */
    template <typename F>
    void
    scheduleAt(Tick when, F &&fn)
    {
        if (when < now_)
            throw std::logic_error(
                "EventQueue::scheduleAt: event scheduled in the past "
                "(when=" + std::to_string(when) +
                ", now=" + std::to_string(now_) + ")");
        Event *ev = allocate();
        bindCallback(*ev, std::forward<F>(fn));
        heap_.push_back(HeapEntry{when, next_seq_++, ev});
        siftUp(heap_.size() - 1);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&fn)
    {
        scheduleAt(now_ + delay, std::forward<F>(fn));
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of events still pending. */
    std::size_t pending() const { return heap_.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run a single event (the earliest). Returns false if the queue was
     * empty.
     */
    bool step();

    /**
     * Run until the queue drains or @p max_ticks is exceeded.
     *
     * @return true if the queue drained, false if the tick limit was hit
     *         (which usually indicates livelock in a protocol under test).
     */
    bool run(Tick max_ticks = kNoTick);

    /**
     * Reset time to zero for reuse (the event pool is retained).
     *
     * A reset with events still pending is almost always a caller bug —
     * silently dropping them would desynchronize whatever component
     * scheduled them — so it throws std::logic_error in every build
     * type unless @p drain is explicitly passed. Pass drain=true only
     * when abandoning a run known to have pending work (e.g. one that
     * hit its livelock tick limit).
     */
    void reset(bool drain = false);

  private:
    /** Bytes of in-record callable storage. Sized to hold the kernel's
     * common customers — a captured [this] plus a Msg by value — without
     * spilling; larger callables fall back to one heap allocation. */
    static constexpr std::size_t kInlineCallbackBytes = 72;

    /** Events allocated per slab chunk. */
    static constexpr std::size_t kSlabEvents = 256;

    /**
     * One pooled event record. The callable lives in `storage` (or, if
     * it does not fit, `storage` holds a pointer to a heap copy);
     * `invoke`/`destroy` are the manual vtable for the erased type.
     */
    struct Event
    {
        void (*invoke)(Event &) = nullptr;
        void (*destroy)(Event &) = nullptr;
        Event *next_free = nullptr;
        alignas(std::max_align_t) unsigned char
            storage[kInlineCallbackBytes];
    };

    /** Heap element: all ordering state, plus the payload pointer. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
    };

    template <typename F>
    static void
    bindCallback(Event &ev, F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(ev.storage))
                Fn(std::forward<F>(fn));
            ev.invoke = [](Event &e) {
                (*std::launder(reinterpret_cast<Fn *>(e.storage)))();
            };
            ev.destroy = [](Event &e) {
                std::launder(reinterpret_cast<Fn *>(e.storage))->~Fn();
            };
        } else {
            // Oversized capture: spill to the heap, store the pointer.
            ::new (static_cast<void *>(ev.storage))
                (Fn *)(new Fn(std::forward<F>(fn)));
            ev.invoke = [](Event &e) {
                (**std::launder(reinterpret_cast<Fn **>(e.storage)))();
            };
            ev.destroy = [](Event &e) {
                delete *std::launder(reinterpret_cast<Fn **>(e.storage));
            };
        }
    }

    /** True when @p a fires strictly before @p b. */
    static bool
    firesBefore(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    Event *allocate();
    void release(Event *ev);
    void destroyPending();
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    std::vector<HeapEntry> heap_; ///< binary min-heap by (when, seq)
    std::vector<std::unique_ptr<Event[]>> slabs_;
    Event *free_list_ = nullptr;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace wo

#endif // WO_SIM_EVENT_QUEUE_HH
