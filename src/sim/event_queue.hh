/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Every timing component of the simulator (caches, directories,
 * interconnects, processors) schedules callbacks on one EventQueue. Events
 * scheduled for the same tick fire in the order they were scheduled, which
 * makes whole-system runs bit-for-bit reproducible for a given seed.
 */

#ifndef WO_SIM_EVENT_QUEUE_HH
#define WO_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace wo {

/**
 * A time-ordered queue of callbacks driving the simulation.
 *
 * The queue is strictly deterministic: ties in scheduled time are broken by
 * insertion sequence number.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * Scheduling in the past is a caller bug and asserts.
     */
    void scheduleAt(Tick when, Callback fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of events still pending. */
    std::size_t pending() const { return events_.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run a single event (the earliest). Returns false if the queue was
     * empty.
     */
    bool step();

    /**
     * Run until the queue drains or @p max_ticks is exceeded.
     *
     * @return true if the queue drained, false if the tick limit was hit
     *         (which usually indicates livelock in a protocol under test).
     */
    bool run(Tick max_ticks = kNoTick);

    /** Reset time to zero and drop all pending events. */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> events_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace wo

#endif // WO_SIM_EVENT_QUEUE_HH
