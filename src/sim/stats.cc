#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

namespace wo {

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    values_[name] = value;
}

void
StatSet::maxOf(const std::string &name, std::uint64_t value)
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second < value)
        values_[name] = value;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.find(name) != values_.end();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[k, v] : other.values_)
        values_[k] += v;
}

void
StatSet::dump(std::ostream &os, const std::string &prefix_filter) const
{
    std::size_t width = 0;
    for (const auto &[k, v] : values_) {
        if (k.rfind(prefix_filter, 0) == 0)
            width = std::max(width, k.size());
    }
    for (const auto &[k, v] : values_) {
        if (k.rfind(prefix_filter, 0) == 0) {
            os << std::left << std::setw(static_cast<int>(width) + 2) << k
               << v << '\n';
        }
    }
}

void
StatSet::dumpJson(std::ostream &os, const std::string &prefix_filter,
                  int indent) const
{
    // Names are "component.stat" identifiers; escape the JSON string
    // metacharacters anyway so arbitrary names stay well-formed.
    auto escape = [](const std::string &s) {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    bool any = false;
    os << "{";
    for (const auto &[k, v] : values_) {
        if (k.rfind(prefix_filter, 0) != 0)
            continue;
        os << (any ? ",\n" : "\n") << pad << "  \"" << escape(k)
           << "\": " << v;
        any = true;
    }
    if (any)
        os << "\n" << pad;
    os << "}";
}

} // namespace wo
