#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

namespace wo {

StatHandle
StatSet::handle(const std::string &name, Kind kind)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        if (kind == Kind::Max)
            slots_[it->second].kind = Kind::Max;
        return StatHandle(it->second);
    }
    std::uint32_t idx = static_cast<std::uint32_t>(slots_.size());
    Slot slot;
    slot.name = name;
    slot.kind = kind;
    slots_.push_back(std::move(slot));
    index_.emplace(name, idx);
    return StatHandle(idx);
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    Slot &s = slots_[handle(name).idx_];
    s.value = value;
    s.touched = true;
    dirty_ = true;
}

const StatSet::Slot *
StatSet::find(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        return nullptr;
    const Slot &s = slots_[it->second];
    return s.touched ? &s : nullptr;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    const Slot *s = find(name);
    return s ? s->value : 0;
}

bool
StatSet::has(const std::string &name) const
{
    return find(name) != nullptr;
}

void
StatSet::merge(const StatSet &other)
{
    for (const Slot &theirs : other.slots_) {
        if (!theirs.touched)
            continue;
        Slot &mine = slots_[handle(theirs.name, theirs.kind).idx_];
        if (mine.kind == Kind::Max) {
            if (!mine.touched || mine.value < theirs.value)
                mine.value = theirs.value;
        } else {
            mine.value += theirs.value;
        }
        mine.touched = true;
    }
    dirty_ = true;
}

void
StatSet::clear()
{
    slots_.clear();
    index_.clear();
    values_.clear();
    dirty_ = false;
}

void
StatSet::reset()
{
    for (Slot &s : slots_) {
        s.value = 0;
        s.touched = false;
    }
    values_.clear();
    dirty_ = false;
}

void
StatSet::syncValues() const
{
    if (!dirty_)
        return;
    values_.clear();
    for (const Slot &s : slots_) {
        if (s.touched)
            values_[s.name] = s.value;
    }
    dirty_ = false;
}

void
StatSet::dump(std::ostream &os, const std::string &prefix_filter) const
{
    syncValues();
    std::size_t width = 0;
    for (const auto &[k, v] : values_) {
        if (k.rfind(prefix_filter, 0) == 0)
            width = std::max(width, k.size());
    }
    for (const auto &[k, v] : values_) {
        if (k.rfind(prefix_filter, 0) == 0) {
            os << std::left << std::setw(static_cast<int>(width) + 2) << k
               << v << '\n';
        }
    }
}

void
StatSet::dumpJson(std::ostream &os, const std::string &prefix_filter,
                  int indent) const
{
    syncValues();
    // Names are "component.stat" identifiers; escape the JSON string
    // metacharacters anyway so arbitrary names stay well-formed.
    auto escape = [](const std::string &s) {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    bool any = false;
    os << "{";
    for (const auto &[k, v] : values_) {
        if (k.rfind(prefix_filter, 0) != 0)
            continue;
        os << (any ? ",\n" : "\n") << pad << "  \"" << escape(k)
           << "\": " << v;
        any = true;
    }
    if (any)
        os << "\n" << pad;
    os << "}";
}

} // namespace wo
