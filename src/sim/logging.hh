/**
 * @file
 * Minimal leveled logging / tracing support.
 *
 * Logging is off by default so test and benchmark runs stay quiet; enable
 * with Log::setLevel() when debugging a protocol trace.
 *
 * The global level is atomic and every emitted line travels through a
 * TraceSink (a mutex-guarded stderr sink by default), so concurrent
 * Campaign worker threads neither tear the level nor interleave
 * mid-line. Log::redirect() points the output at any other sink — e.g.
 * a TraceBuffer, folding free-form log lines into a structured trace.
 */

#ifndef WO_SIM_LOGGING_HH
#define WO_SIM_LOGGING_HH

#include <sstream>
#include <string>

#include "sim/types.hh"

namespace wo {

class TraceSink;

/** Severity levels for simulator tracing. */
enum class LogLevel { None = 0, Warn = 1, Info = 2, Trace = 3 };

/** Global logging configuration and sink. */
class Log
{
  public:
    /** Set the global verbosity (atomic; safe from any thread). */
    static void setLevel(LogLevel lvl);

    /** Current verbosity. */
    static LogLevel level();

    /** True if messages at @p lvl would be emitted. */
    static bool enabled(LogLevel lvl) { return level() >= lvl; }

    /** Emit one line, prefixed with the component name and tick. */
    static void emit(LogLevel lvl, Tick tick, const std::string &who,
                     const std::string &msg);

    /**
     * Route emitted lines into @p sink as TraceComp::Log events
     * (nullptr restores the default locked-stderr sink). The sink must
     * outlive the redirection; the caller owns it.
     */
    static void redirect(TraceSink *sink);
};

/**
 * Convenience macros. The level test guards everything: the message
 * expression, the tick argument and the emit call are only evaluated
 * when tracing is enabled, so a disabled trace point costs one atomic
 * load and a branch.
 *
 * WO_TRACE_AT takes the tick directly, for components that carry a tick
 * but no EventQueue reference.
 */
#define WO_TRACE_AT(tick, who, expr)                                        \
    do {                                                                    \
        if (::wo::Log::enabled(::wo::LogLevel::Trace)) {                    \
            std::ostringstream oss_;                                        \
            oss_ << expr;                                                   \
            ::wo::Log::emit(::wo::LogLevel::Trace, (tick), (who),           \
                            oss_.str());                                    \
        }                                                                   \
    } while (0)

#define WO_TRACE(eq, who, expr) WO_TRACE_AT((eq).now(), who, expr)

} // namespace wo

#endif // WO_SIM_LOGGING_HH
