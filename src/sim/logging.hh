/**
 * @file
 * Minimal leveled logging / tracing support.
 *
 * Logging is off by default so test and benchmark runs stay quiet; enable
 * with Log::setLevel() when debugging a protocol trace.
 */

#ifndef WO_SIM_LOGGING_HH
#define WO_SIM_LOGGING_HH

#include <sstream>
#include <string>

#include "sim/types.hh"

namespace wo {

/** Severity levels for simulator tracing. */
enum class LogLevel { None = 0, Warn = 1, Info = 2, Trace = 3 };

/** Global logging configuration and sink. */
class Log
{
  public:
    /** Set the global verbosity. */
    static void setLevel(LogLevel lvl);

    /** Current verbosity. */
    static LogLevel level();

    /** True if messages at @p lvl would be emitted. */
    static bool enabled(LogLevel lvl) { return level() >= lvl; }

    /** Emit one line, prefixed with the component name and tick. */
    static void emit(LogLevel lvl, Tick tick, const std::string &who,
                     const std::string &msg);
};

/** Convenience macro: only evaluates the message when tracing is on. */
#define WO_TRACE(eq, who, expr)                                             \
    do {                                                                    \
        if (::wo::Log::enabled(::wo::LogLevel::Trace)) {                    \
            std::ostringstream oss_;                                        \
            oss_ << expr;                                                   \
            ::wo::Log::emit(::wo::LogLevel::Trace, (eq).now(), (who),       \
                            oss_.str());                                    \
        }                                                                   \
    } while (0)

} // namespace wo

#endif // WO_SIM_LOGGING_HH
