#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace wo {

void
EventQueue::scheduleAt(Tick when, Callback fn)
{
    assert(when >= now_ && "cannot schedule an event in the past");
    events_.push(Entry{when, next_seq_++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // priority_queue::top() returns a const ref; the callback must be moved
    // out before pop, so copy the entry (cheap: one std::function).
    Entry e = events_.top();
    events_.pop();
    assert(e.when >= now_);
    now_ = e.when;
    ++executed_;
    e.fn();
    return true;
}

bool
EventQueue::run(Tick max_ticks)
{
    while (!events_.empty()) {
        if (events_.top().when > max_ticks)
            return false;
        step();
    }
    return true;
}

void
EventQueue::reset()
{
    while (!events_.empty())
        events_.pop();
    now_ = 0;
    next_seq_ = 0;
    executed_ = 0;
}

} // namespace wo
