#include "sim/event_queue.hh"

#include <cassert>

namespace wo {

EventQueue::~EventQueue()
{
    destroyPending();
}

EventQueue::Event *
EventQueue::allocate()
{
    if (!free_list_) {
        slabs_.push_back(std::make_unique<Event[]>(kSlabEvents));
        Event *chunk = slabs_.back().get();
        // Chain the fresh chunk in address order (order is irrelevant
        // for determinism — firing order comes from (when, seq) alone).
        for (std::size_t i = 0; i < kSlabEvents - 1; ++i)
            chunk[i].next_free = &chunk[i + 1];
        chunk[kSlabEvents - 1].next_free = nullptr;
        free_list_ = chunk;
    }
    Event *ev = free_list_;
    free_list_ = ev->next_free;
    ev->next_free = nullptr;
    return ev;
}

void
EventQueue::release(Event *ev)
{
    ev->invoke = nullptr;
    ev->destroy = nullptr;
    ev->next_free = free_list_;
    free_list_ = ev;
}

void
EventQueue::destroyPending()
{
    for (HeapEntry &e : heap_) {
        e.ev->destroy(*e.ev);
        release(e.ev);
    }
    heap_.clear();
}

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!firesBefore(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t left = 2 * i + 1;
        if (left >= n)
            break;
        std::size_t best = left;
        std::size_t right = left + 1;
        if (right < n && firesBefore(heap_[right], heap_[left]))
            best = right;
        if (!firesBefore(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    assert(top.when >= now_);
    now_ = top.when;
    ++executed_;
    // Fire in place: the record is stable while its callback schedules
    // further events (slab storage never relocates), and is recycled
    // only after the callback returns.
    top.ev->invoke(*top.ev);
    top.ev->destroy(*top.ev);
    release(top.ev);
    return true;
}

bool
EventQueue::run(Tick max_ticks)
{
    while (!heap_.empty()) {
        if (heap_.front().when > max_ticks)
            return false;
        step();
    }
    return true;
}

void
EventQueue::reset(bool drain)
{
    if (!heap_.empty() && !drain)
        throw std::logic_error(
            "EventQueue::reset: " + std::to_string(heap_.size()) +
            " events still pending (pass drain=true to drop them "
            "deliberately)");
    destroyPending();
    now_ = 0;
    next_seq_ = 0;
    executed_ = 0;
}

} // namespace wo
