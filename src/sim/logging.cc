#include "sim/logging.hh"

#include <iostream>

namespace wo {

namespace {
LogLevel g_level = LogLevel::None;
} // namespace

void
Log::setLevel(LogLevel lvl)
{
    g_level = lvl;
}

LogLevel
Log::level()
{
    return g_level;
}

void
Log::emit(LogLevel lvl, Tick tick, const std::string &who,
          const std::string &msg)
{
    if (g_level < lvl)
        return;
    std::cerr << tick << " [" << who << "] " << msg << '\n';
}

} // namespace wo
