#include "sim/logging.hh"

#include <atomic>
#include <iostream>

#include "obs/trace_sink.hh"

namespace wo {

namespace {

std::atomic<LogLevel> g_level{LogLevel::None};
std::atomic<TraceSink *> g_sink{nullptr};

/** Default destination: one mutex-guarded line at a time to stderr. */
TextTraceSink &
stderrSink()
{
    static TextTraceSink sink(std::cerr);
    return sink;
}

} // namespace

void
Log::setLevel(LogLevel lvl)
{
    g_level.store(lvl, std::memory_order_relaxed);
}

LogLevel
Log::level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
Log::redirect(TraceSink *sink)
{
    g_sink.store(sink, std::memory_order_release);
}

void
Log::emit(LogLevel lvl, Tick tick, const std::string &who,
          const std::string &msg)
{
    if (level() < lvl)
        return;
    TraceEvent ev;
    ev.tick = tick;
    ev.comp = TraceComp::Log;
    ev.kind = TraceKind::LogMessage;
    ev.text = "[" + who + "] " + msg;
    TraceSink *sink = g_sink.load(std::memory_order_acquire);
    (sink ? *sink : static_cast<TraceSink &>(stderrSink())).record(ev);
}

} // namespace wo
