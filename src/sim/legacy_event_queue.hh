/**
 * @file
 * The historical event kernel, kept verbatim as a differential oracle.
 *
 * This is the std::priority_queue<std::function> implementation the
 * pooled EventQueue replaced. It is NOT used by the simulator; it exists
 * so that
 *
 *  - tests/test_event_queue.cc can assert the pooled kernel fires the
 *    exact same (tick, id) sequence for randomized self-scheduling
 *    workloads (golden event-order determinism), and
 *  - bench/event_kernel.cc can record the before/after dispatch
 *    throughput of the replacement.
 *
 * Semantics: identical to EventQueue — events fire in (tick, insertion
 * seq) order; past-tick scheduling throws std::logic_error.
 */

#ifndef WO_SIM_LEGACY_EVENT_QUEUE_HH
#define WO_SIM_LEGACY_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/types.hh"

namespace wo {

/** Reference kernel: one heap-allocated std::function per event. */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    LegacyEventQueue() = default;

    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    Tick now() const { return now_; }

    void
    scheduleAt(Tick when, Callback fn)
    {
        if (when < now_)
            throw std::logic_error(
                "LegacyEventQueue::scheduleAt: event scheduled in the "
                "past");
        events_.push(Entry{when, next_seq_++, std::move(fn)});
    }

    void
    scheduleAfter(Tick delay, Callback fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    bool empty() const { return events_.empty(); }
    std::size_t pending() const { return events_.size(); }
    std::uint64_t executed() const { return executed_; }

    bool
    step()
    {
        if (events_.empty())
            return false;
        // priority_queue::top() returns a const ref; the callback must
        // be moved out before pop, so copy the entry (one std::function).
        Entry e = events_.top();
        events_.pop();
        now_ = e.when;
        ++executed_;
        e.fn();
        return true;
    }

    bool
    run(Tick max_ticks = kNoTick)
    {
        while (!events_.empty()) {
            if (events_.top().when > max_ticks)
                return false;
            step();
        }
        return true;
    }

    void
    reset()
    {
        while (!events_.empty())
            events_.pop();
        now_ = 0;
        next_seq_ = 0;
        executed_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> events_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace wo

#endif // WO_SIM_LEGACY_EVENT_QUEUE_HH
