/**
 * @file
 * Fundamental scalar types shared by every subsystem of the weakorder
 * library.
 */

#ifndef WO_SIM_TYPES_HH
#define WO_SIM_TYPES_HH

#include <cstdint>

namespace wo {

/** Simulated time, in cycles. */
using Tick = std::uint64_t;

/** A word address in the simulated shared memory (word granularity). */
using Addr = std::uint32_t;

/** A value stored in one memory word. */
using Word = std::uint64_t;

/** Identifier of a processor (0-based). */
using ProcId = int;

/** Identifier of a node on an interconnect (caches, directories, ...). */
using NodeId = int;

/** Sentinel meaning "no tick recorded yet". */
inline constexpr Tick kNoTick = ~Tick{0};

/** Sentinel for "no processor" (used e.g. for initializing writes). */
inline constexpr ProcId kNoProc = -1;

} // namespace wo

#endif // WO_SIM_TYPES_HH
