/**
 * @file
 * Small, fast, seedable pseudo-random number generator.
 *
 * The simulator must be reproducible across platforms and standard library
 * versions, so it uses its own splitmix64/xoshiro-style generator rather
 * than std::mt19937 plus distribution objects (whose outputs are not
 * portable).
 */

#ifndef WO_SIM_RNG_HH
#define WO_SIM_RNG_HH

#include <cstdint>

namespace wo {

/** A deterministic 64-bit PRNG (splitmix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p num / @p den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Fork an independent stream (e.g. one per network message). */
    Rng
    split()
    {
        return Rng(next());
    }

  private:
    std::uint64_t state_;
};

} // namespace wo

#endif // WO_SIM_RNG_HH
