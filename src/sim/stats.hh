/**
 * @file
 * Lightweight statistics registry.
 *
 * Components register named counters and scalars; harnesses dump them as
 * aligned tables. This mirrors (in miniature) the stats packages of
 * full-system simulators.
 *
 * Two access paths share one store:
 *
 *  - the string path (`inc("cache0.misses")`) resolves the name on every
 *    call — convenient for harnesses and one-off counters;
 *  - the handle path: a component resolves a StatHandle once at
 *    construction and bumps a dense array slot on the hot path, with no
 *    hashing, no string building and no allocation per event.
 *
 * A handle only *reserves* a slot: the stat stays invisible to get/has/
 * all/dump until the first bump, so registering handles never changes
 * reported output.
 */

#ifndef WO_SIM_STATS_HH
#define WO_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace wo {

/**
 * An interned reference to one StatSet counter. Cheap to copy; valid for
 * the lifetime of the StatSet that issued it. A default-constructed
 * handle is invalid and must not be bumped.
 */
class StatHandle
{
  public:
    StatHandle() = default;

    bool valid() const { return idx_ != kInvalid; }

  private:
    friend class StatSet;

    static constexpr std::uint32_t kInvalid = ~std::uint32_t(0);

    explicit StatHandle(std::uint32_t idx) : idx_(idx) {}

    std::uint32_t idx_ = kInvalid;
};

/**
 * A flat registry of named statistic values.
 *
 * Names are conventionally "component.stat", e.g. "cache0.misses".
 */
class StatSet
{
  public:
    /**
     * How a stat combines across shards in merge():
     *  - Sum: values add (event counters, totals);
     *  - Max: the merged value is the maximum (high-water marks tracked
     *    via maxOf()). Summing a high-water mark across campaign shards
     *    would fabricate a level no single run ever reached.
     */
    enum class Kind : std::uint8_t { Sum, Max };

    /**
     * Intern @p name and return its handle. Idempotent: the same name
     * always yields the same handle. The slot is reserved but stays
     * unreported until first bumped. @p kind applies on creation;
     * interning an existing Sum stat with Kind::Max upgrades it (the
     * reverse never downgrades).
     */
    StatHandle handle(const std::string &name, Kind kind = Kind::Sum);

    /** Add @p delta to the counter behind @p h (hot path). */
    void inc(StatHandle h, std::uint64_t delta = 1)
    {
        Slot &s = slots_[h.idx_];
        s.value += delta;
        s.touched = true;
        dirty_ = true;
    }

    /** Raise the counter behind @p h to at least @p value (hot path). */
    void maxOf(StatHandle h, std::uint64_t value)
    {
        Slot &s = slots_[h.idx_];
        if (!s.touched || s.value < value)
            s.value = value;
        s.touched = true;
        dirty_ = true;
    }

    /** Add @p delta to counter @p name (created at zero on first use). */
    void inc(const std::string &name, std::uint64_t delta = 1)
    {
        inc(handle(name), delta);
    }

    /** Set counter @p name to an absolute value. */
    void set(const std::string &name, std::uint64_t value);

    /** Track the maximum of values reported for @p name. Marks the stat
     * Kind::Max, so merge() combines it with max instead of +. */
    void maxOf(const std::string &name, std::uint64_t value)
    {
        maxOf(handle(name, Kind::Max), value);
    }

    /** Value of @p name, or 0 if never touched. */
    std::uint64_t get(const std::string &name) const;

    /** True if the counter exists (has been bumped, not just interned). */
    bool has(const std::string &name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        syncValues();
        return values_;
    }

    /**
     * Merge another StatSet into this one: Sum-kind stats add, Max-kind
     * stats (see maxOf) combine with max. A stat absent on one side
     * adopts the other side's value and kind.
     */
    void merge(const StatSet &other);

    /** Remove every counter (interned handles become invalid). */
    void clear();

    /**
     * Zero every counter and max-tracker for reuse, keeping interned
     * slots (and therefore every issued StatHandle) valid. Reset stats
     * revert to untouched: they disappear from get/has/all/dump until
     * bumped again, so a reset StatSet reports exactly what a freshly
     * constructed one would. Kind markings (Sum/Max) are retained,
     * matching what re-interning at construction would restore.
     */
    void reset();

    /** Pretty-print as an aligned two-column table. */
    void dump(std::ostream &os, const std::string &prefix_filter = "") const;

    /**
     * Emit as a JSON object ({"name": value, ...}, keys sorted), for
     * machine-readable reports (`wo-litmus --json`, bench harnesses).
     *
     * @param prefix_filter keep only counters whose name starts with it.
     * @param indent leading spaces on every line after the first, so the
     *        object can be embedded in a larger document.
     */
    void dumpJson(std::ostream &os, const std::string &prefix_filter = "",
                  int indent = 0) const;

  private:
    struct Slot
    {
        std::string name;
        std::uint64_t value = 0;
        Kind kind = Kind::Sum;
        bool touched = false; ///< bumped at least once (reportable)
    };

    /** Rebuild the sorted name->value view if any slot changed. */
    void syncValues() const;

    const Slot *find(const std::string &name) const;

    std::vector<Slot> slots_;
    std::unordered_map<std::string, std::uint32_t> index_;

    /** Cached sorted view for all(); rebuilt lazily. */
    mutable std::map<std::string, std::uint64_t> values_;
    mutable bool dirty_ = false;
};

} // namespace wo

#endif // WO_SIM_STATS_HH
