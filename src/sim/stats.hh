/**
 * @file
 * Lightweight statistics registry.
 *
 * Components register named counters and scalars; harnesses dump them as
 * aligned tables. This mirrors (in miniature) the stats packages of
 * full-system simulators.
 */

#ifndef WO_SIM_STATS_HH
#define WO_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace wo {

/**
 * A flat registry of named statistic values.
 *
 * Names are conventionally "component.stat", e.g. "cache0.misses".
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (created at zero on first use). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Set counter @p name to an absolute value. */
    void set(const std::string &name, std::uint64_t value);

    /** Track the maximum of values reported for @p name. */
    void maxOf(const std::string &name, std::uint64_t value);

    /** Value of @p name, or 0 if never touched. */
    std::uint64_t get(const std::string &name) const;

    /** True if the counter exists. */
    bool has(const std::string &name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return values_;
    }

    /** Merge another StatSet into this one (summing shared names). */
    void merge(const StatSet &other);

    /** Remove every counter. */
    void clear() { values_.clear(); }

    /** Pretty-print as an aligned two-column table. */
    void dump(std::ostream &os, const std::string &prefix_filter = "") const;

    /**
     * Emit as a JSON object ({"name": value, ...}, keys sorted), for
     * machine-readable reports (`wo-litmus --json`, bench harnesses).
     *
     * @param prefix_filter keep only counters whose name starts with it.
     * @param indent leading spaces on every line after the first, so the
     *        object can be embedded in a larger document.
     */
    void dumpJson(std::ostream &os, const std::string &prefix_filter = "",
                  int indent = 0) const;

  private:
    std::map<std::string, std::uint64_t> values_;
};

} // namespace wo

#endif // WO_SIM_STATS_HH
